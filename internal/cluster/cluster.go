package cluster

import (
	"context"
	"time"

	"repro/internal/obs"
)

// Config shapes a Cluster router. Zero fields take the documented
// defaults.
type Config struct {
	// Replicas is the fleet the router fronts. Required, non-empty.
	Replicas []Replica

	// VirtualNodes per replica on the ring (default DefaultVnodes).
	VirtualNodes int

	// Seed perturbs ring hashing, span IDs, and Retry-After jitter.
	// Two routers sharing a seed and replica list agree on every key's
	// placement.
	Seed int64

	// DefaultSeed must match the replicas' serve default calibration
	// seed: the router substitutes it when a request omits seed so the
	// shard key equals the key the replica will actually cache under.
	DefaultSeed int64

	// TenantRate is each tenant's sustained requests/second on planning
	// endpoints (token-bucket refill); <= 0 disables per-tenant quotas.
	// TenantBurst is the bucket depth (default 1 when rate is set).
	TenantRate  float64
	TenantBurst float64

	// MaxInflight caps concurrently forwarded planning requests; excess
	// requests shed with 429 (default 256, <0 disables).
	MaxInflight int

	// MaxBodyBytes caps request bodies at the router (default 1 MiB) —
	// the router reads bodies fully to derive shard keys.
	MaxBodyBytes int64

	// RetryAfterSpreadS bounds the jittered Retry-After on router 429s:
	// values are dealt deterministically from [1, spread] (default 3).
	RetryAfterSpreadS int

	// HealthInterval is the background health-poll period; 0 disables
	// the loop (CheckHealthNow still works — the deterministic path).
	HealthInterval time.Duration

	// HealthFailures is the consecutive-failure threshold that marks a
	// replica dead (default 2). Forward failures count toward it too.
	HealthFailures int

	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration

	// TelemetryInterval is the background telemetry-scrape period; 0
	// disables the loop (ScrapeTelemetryNow and on-demand scrapes via
	// GET /v1/cluster/telemetry still work — the deterministic path).
	TelemetryInterval time.Duration

	// TelemetryTimeout bounds one replica telemetry scrape (default 2s).
	TelemetryTimeout time.Duration

	// SLOs are the objectives evaluated over the aggregated telemetry
	// stream. nil takes obs.DefaultSLOs(); an empty non-nil slice
	// disables SLO tracking.
	SLOs []obs.SLO

	// Registry and Tracer are the observability sinks; nil values get
	// private instances (the tracer seeded from Seed).
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

// Cluster owns the router, the ring, and the health machinery over a
// replica fleet. It holds no planning state: replicas can join a
// freshly restarted router and every key routes identically.
type Cluster struct {
	cfg       Config
	ring      *Ring
	set       *replicaSet
	health    *healthChecker
	telemetry *telemetryAggregator
	router    *Router
	reg       *obs.Registry

	// baseCtx bounds every health probe the cluster issues; Close
	// cancels it so no probe outlives the cluster.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds a Cluster and starts background health polling when
// configured. Callers must Close it.
func New(cfg Config) (*Cluster, error) {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVnodes
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.HealthFailures <= 0 {
		cfg.HealthFailures = 2
	}
	if cfg.RetryAfterSpreadS <= 0 {
		cfg.RetryAfterSpreadS = 3
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(cfg.Seed)
	}
	ring := NewRing(cfg.Seed, cfg.VirtualNodes)
	set, err := newReplicaSet(cfg.Replicas, ring, reg)
	if err != nil {
		return nil, err
	}
	health := newHealthChecker(set, cfg.HealthFailures, cfg.HealthTimeout)
	slos := cfg.SLOs
	if slos == nil {
		slos = obs.DefaultSLOs()
	}
	telemetry := newTelemetryAggregator(set, reg, cfg.TelemetryTimeout, slos)
	// The fresh root is legitimate here: New is the top of the cluster's
	// lifecycle — no caller context exists to derive from.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:        cfg,
		ring:       ring,
		set:        set,
		health:     health,
		telemetry:  telemetry,
		router:     newRouter(cfg, ring, set, health, telemetry, reg, tracer),
		reg:        reg,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
	}
	health.start(baseCtx, cfg.HealthInterval)
	telemetry.start(baseCtx, cfg.TelemetryInterval)
	return c, nil
}

// Router returns the HTTP front end.
func (c *Cluster) Router() *Router { return c.router }

// Ring exposes the placement ring (read-mostly; health owns mutation).
func (c *Cluster) Ring() *Ring { return c.ring }

// CheckHealthNow runs one synchronous health sweep over every replica —
// the deterministic alternative to background polling. After Close it
// is a no-op: the base context is cancelled, so the sweep returns
// without recording bogus probe failures.
func (c *Cluster) CheckHealthNow() { c.health.checkAll(c.baseCtx) }

// ScrapeTelemetryNow runs one synchronous telemetry aggregation sweep
// and returns the merged fleet view — the deterministic alternative to
// the background scrape loop. After Close it returns the last
// published aggregate without issuing network calls.
func (c *Cluster) ScrapeTelemetryNow() *ClusterTelemetryResponse {
	return c.telemetry.scrape(c.baseCtx)
}

// Drain marks a replica draining (or healthy again), rebalancing its
// ring arcs; unknown names report false.
func (c *Cluster) Drain(name string) bool   { return c.set.setState(name, StateDraining) }
func (c *Cluster) Undrain(name string) bool { return c.set.setState(name, StateHealthy) }

// Replicas reports the fleet's current states in configured order.
func (c *Cluster) Replicas() []ReplicaStatus { return c.set.snapshot() }

// Close cancels in-flight health probes, stops background polling, and
// always returns nil (the error slot matches serve.Server.Close for
// callers shutting both down). Replica lifecycles belong to their
// owners — the router never shuts a replica down.
func (c *Cluster) Close() error {
	// Cancel before stop: an in-flight probe against a hung replica
	// aborts immediately instead of holding the poll loop (and us)
	// until its timeout.
	c.baseCancel()
	c.health.stop()
	c.telemetry.stop()
	return nil
}
