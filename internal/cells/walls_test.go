package cells

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

func TestNewVesselWallValidation(t *testing.T) {
	_, sp := flowCase(t, 8, 2, 16)
	if _, err := NewVesselWall(sp.Fluid, 0, 2); err == nil {
		t.Error("want error for zero stiffness")
	}
	if _, err := NewVesselWall(sp.Fluid, 0.1, 0); err == nil {
		t.Error("want error for zero spacing")
	}
	w, err := NewVesselWall(sp.Fluid, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Markers) == 0 {
		t.Fatal("no wall markers seeded")
	}
	if w.MaxDeflection() != 0 {
		t.Error("fresh wall already deflected")
	}
}

func TestWallSpacingThinsMarkers(t *testing.T) {
	_, sp := flowCase(t, 8, 2, 16)
	dense, err := NewVesselWall(sp.Fluid, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewVesselWall(sp.Fluid, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sparse.Markers) >= len(dense.Markers) {
		t.Errorf("spacing did not thin markers: %d vs %d", len(sparse.Markers), len(dense.Markers))
	}
	// Spacing 4 keeps roughly a quarter.
	if r := float64(len(dense.Markers)) / float64(len(sparse.Markers)); r < 3 || r > 5 {
		t.Errorf("spacing ratio %v, want ~4", r)
	}
}

func TestCompliantWallDeflectsAndHolds(t *testing.T) {
	// A driven flow deflects the compliant wall slightly; the anchoring
	// springs keep the deflection bounded and the run stable.
	_, sp := flowCase(t, 8, 2, 16)
	w, err := NewVesselWall(sp.Fluid, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AddWalls(w); err != nil {
		t.Fatal(err)
	}
	if sp.WallMarkers() != len(w.Markers) {
		t.Errorf("WallMarkers = %d, want %d", sp.WallMarkers(), len(w.Markers))
	}
	if err := sp.Run(300); err != nil {
		t.Fatal(err)
	}
	defl := w.MaxDeflection()
	if defl <= 0 {
		t.Error("wall did not deflect under flow")
	}
	if defl > 1.0 {
		t.Errorf("wall deflection %v lattice units; anchoring failed", defl)
	}
	if v := sp.Fluid.MaxSpeed(); v > 0.1 {
		t.Errorf("walled run unstable: %v", v)
	}
}

func TestWallAccountingScales(t *testing.T) {
	_, sp := flowCase(t, 8, 2, 16)
	w, err := NewVesselWall(sp.Fluid, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AddWalls(w); err != nil {
		t.Fatal(err)
	}
	a := sp.WallAccounting()
	if a.Total() <= 0 {
		t.Fatal("zero wall accounting")
	}
	perMarker := a.Total() / float64(sp.WallMarkers())
	cellAcct := sp.Account()
	if perMarker != cellAcct.Total()/float64(sp.Markers()) {
		t.Error("wall and cell per-marker accounting should match (same access pattern)")
	}
}

func TestWallsMassConserved(t *testing.T) {
	fluid, sp := flowCase(t, 8, 2, 16)
	w, err := NewVesselWall(sp.Fluid, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AddWalls(w); err != nil {
		t.Fatal(err)
	}
	m0 := fluid.TotalMass()
	if err := sp.Run(100); err != nil {
		t.Fatal(err)
	}
	if rel := abs(fluid.TotalMass()-m0) / m0; rel > 1e-7 {
		t.Errorf("mass drifted by %v with wall forcing", rel)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAddWallsRejectsUnsupportedMarker(t *testing.T) {
	_, sp := flowCase(t, 8, 2, 16)
	bad := &Wall{
		Markers:   []geometry.Vec3{{X: -50, Y: -50, Z: -50}},
		rest:      []geometry.Vec3{{X: -50, Y: -50, Z: -50}},
		Stiffness: 0.1,
	}
	if err := sp.AddWalls(bad); err == nil {
		t.Error("want error for marker with no fluid support")
	}
}

func TestWallOnAorta(t *testing.T) {
	// Walls work on anatomical geometries too, not just the cylinder.
	dom, err := geometry.Aorta(5)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := NewSphereCell(geometry.Vec3{X: 6, Y: 10, Z: float64(dom.NZ-1) / 2}, 1.5, 12, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSuspension(fluid, []*Cell{cell})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewVesselWall(fluid, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AddWalls(w); err != nil {
		t.Fatal(err)
	}
	if err := sp.Run(80); err != nil {
		t.Fatal(err)
	}
	if v := fluid.MaxSpeed(); v > 0.2 {
		t.Errorf("aorta walled run unstable: %v", v)
	}
}
