package cells

import (
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

// Wall is the deformable-vessel-wall counterpart of a Cell: Lagrangian
// markers seeded on the vessel surface, each anchored by a spring to its
// rest position. Unlike suspended cells, wall markers do not ride the
// flow freely — they deflect with it and are pulled back, a compliant
// wall. This contributes the t_pos/walls, t_walls and t_forces/walls
// terms of the paper's Eq. 2.
type Wall struct {
	Markers   []geometry.Vec3
	rest      []geometry.Vec3
	Stiffness float64
}

// NewVesselWall seeds wall markers on every spacing-th wall-classified
// fluid site of the solver's domain. The rest configuration is the
// undeformed geometry.
func NewVesselWall(s *lbm.Sparse, stiffness float64, spacing int) (*Wall, error) {
	if stiffness <= 0 {
		return nil, fmt.Errorf("cells: wall stiffness %g must be positive", stiffness)
	}
	if spacing < 1 {
		return nil, fmt.Errorf("cells: wall marker spacing %d must be >= 1", spacing)
	}
	w := &Wall{Stiffness: stiffness}
	count := 0
	for si := 0; si < s.N(); si++ {
		if s.Type(si) != geometry.Wall {
			continue
		}
		if count%spacing == 0 {
			x, y, z := s.SiteCoords(si)
			p := geometry.Vec3{X: float64(x), Y: float64(y), Z: float64(z)}
			w.Markers = append(w.Markers, p)
			w.rest = append(w.rest, p)
		}
		count++
	}
	if len(w.Markers) == 0 {
		return nil, fmt.Errorf("cells: domain %q has no wall sites to seed", s.Dom.Name)
	}
	return w, nil
}

// MaxDeflection returns the largest marker displacement from rest.
func (w *Wall) MaxDeflection() float64 {
	var m float64
	for i := range w.Markers {
		if d := w.Markers[i].Sub(w.rest[i]).Norm(); d > m {
			m = d
		}
	}
	return m
}

// AddWalls attaches compliant walls to the suspension. Must be called
// before the first Step so the accounting stays consistent.
func (sp *Suspension) AddWalls(walls ...*Wall) error {
	for wi, w := range walls {
		for mi, m := range w.Markers {
			if !sp.inFluidOrBoundary(m) {
				return fmt.Errorf("cells: wall %d marker %d has no fluid support", wi, mi)
			}
		}
		sp.walls = append(sp.walls, w)
		sp.wallMarkers += len(w.Markers)
	}
	return nil
}

// inFluidOrBoundary reports whether at least one trilinear support site
// of p is fluid; wall markers sit at the fluid rim, where part of the
// support stencil is solid by construction.
func (sp *Suspension) inFluidOrBoundary(p geometry.Vec3) bool {
	found := false
	sp.trilinearPartial(p, func(int, float64) { found = true })
	return found
}

// trilinearPartial visits the fluid subset of p's support sites with
// renormalized weights, so coupling degrades gracefully at the rim
// instead of failing.
func (sp *Suspension) trilinearPartial(p geometry.Vec3, visit func(si int, w float64)) {
	type hit struct {
		si int
		w  float64
	}
	var hits []hit
	var total float64
	sp.trilinearAll(p, func(si int, w float64) {
		if si >= 0 {
			hits = append(hits, hit{si, w})
			total += w
		}
	})
	if total <= 0 {
		return
	}
	for _, h := range hits {
		visit(h.si, h.w/total)
	}
}

// trilinearAll visits all eight support slots (si may be -1 for solid).
func (sp *Suspension) trilinearAll(p geometry.Vec3, visit func(si int, w float64)) {
	x0 := int(math.Floor(p.X))
	y0 := int(math.Floor(p.Y))
	z0 := int(math.Floor(p.Z))
	fx, fy, fz := p.X-math.Floor(p.X), p.Y-math.Floor(p.Y), p.Z-math.Floor(p.Z)
	for dz := 0; dz <= 1; dz++ {
		wz := fz
		if dz == 0 {
			wz = 1 - fz
		}
		for dy := 0; dy <= 1; dy++ {
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			for dx := 0; dx <= 1; dx++ {
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				visit(sp.Fluid.SiteAt(x0+dx, y0+dy, z0+dz), wx*wy*wz)
			}
		}
	}
}

// stepWalls advects wall markers with the rim flow and spreads their
// anchoring forces — the walls part of one coupled timestep.
func (sp *Suspension) stepWalls() {
	for _, w := range sp.walls {
		for mi := range w.Markers {
			// t_pos/walls: deflect with the local flow.
			var ux, uy, uz float64
			sp.trilinearPartial(w.Markers[mi], func(si int, wt float64) {
				_, vx, vy, vz := sp.Fluid.Macro(si)
				ux += wt * vx
				uy += wt * vy
				uz += wt * vz
			})
			w.Markers[mi].X += ux
			w.Markers[mi].Y += uy
			w.Markers[mi].Z += uz
			// t_forces/walls: anchored springs; reaction on the fluid.
			fx := -w.Stiffness * (w.Markers[mi].X - w.rest[mi].X)
			fy := -w.Stiffness * (w.Markers[mi].Y - w.rest[mi].Y)
			fz := -w.Stiffness * (w.Markers[mi].Z - w.rest[mi].Z)
			sp.trilinearPartial(w.Markers[mi], func(si int, wt float64) {
				sp.force[si*3] += wt * fx
				sp.force[si*3+1] += wt * fy
				sp.force[si*3+2] += wt * fz
			})
		}
	}
}

// WallMarkers returns the total wall-marker count.
func (sp *Suspension) WallMarkers() int { return sp.wallMarkers }

// WallAccounting returns the per-timestep byte traffic of the wall terms,
// the same access pattern as the cell terms over the wall marker count.
func (sp *Suspension) WallAccounting() Accounting {
	m := float64(sp.wallMarkers)
	const d = 8
	return Accounting{
		PosBytes:    m * 8 * lbm.NQ * d,
		ForceBytes:  m * (3*2 + 3) * d,
		SpreadBytes: m * 8 * 3 * 2 * d,
	}
}
