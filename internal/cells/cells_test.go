package cells

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

// flowCase builds a force-driven periodic cylinder with one suspended
// cell near the axis.
func flowCase(t *testing.T, radius, cellR float64, markers int) (*lbm.Sparse, *Suspension) {
	t.Helper()
	dom, err := geometry.Cylinder(32, radius)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{5e-6, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	c := geometry.Vec3{X: 8, Y: float64(dom.NY-1) / 2, Z: float64(dom.NZ-1) / 2}
	cell, err := NewSphereCell(c, cellR, markers, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSuspension(fluid, []*Cell{cell})
	if err != nil {
		t.Fatal(err)
	}
	return fluid, sp
}

func TestNewSphereCellGeometry(t *testing.T) {
	ctr := geometry.Vec3{X: 10, Y: 10, Z: 10}
	c, err := NewSphereCell(ctr, 3, 32, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Markers) != 32 {
		t.Fatalf("marker count %d, want 32", len(c.Markers))
	}
	// Markers near the sphere surface (offsets are re-centered, which
	// shifts radii slightly) and the centroid exactly at the center.
	for i, m := range c.Markers {
		d := m.Sub(ctr).Norm()
		if math.Abs(d-3) > 0.5 {
			t.Errorf("marker %d at radius %v, want ~3", i, d)
		}
	}
	got := c.Centroid()
	if got.Sub(ctr).Norm() > 1e-9 {
		t.Errorf("centroid %v not at center", got)
	}
	if d := c.Deformation(); d > 1e-9 {
		t.Errorf("fresh cell deformation %v, want 0", d)
	}
	// Reference offsets sum to zero: internal forces are momentum-free.
	var sum geometry.Vec3
	for _, o := range c.ref {
		sum.X += o.X
		sum.Y += o.Y
		sum.Z += o.Z
	}
	if sum.Norm() > 1e-9 {
		t.Errorf("reference offsets sum to %v, want 0", sum)
	}
}

func TestNewSphereCellValidation(t *testing.T) {
	ctr := geometry.Vec3{}
	if _, err := NewSphereCell(ctr, 3, 2, 0.1); err == nil {
		t.Error("want error for too few markers")
	}
	if _, err := NewSphereCell(ctr, 0, 8, 0.1); err == nil {
		t.Error("want error for zero radius")
	}
	if _, err := NewSphereCell(ctr, 3, 8, 0); err == nil {
		t.Error("want error for zero stiffness")
	}
}

func TestNewSuspensionRejectsMarkerInSolid(t *testing.T) {
	dom, err := geometry.Cylinder(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	// A cell centered at the domain corner straddles solid.
	cell, err := NewSphereCell(geometry.Vec3{X: 2, Y: 1, Z: 1}, 2, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSuspension(fluid, []*Cell{cell}); err == nil {
		t.Error("want error for marker outside fluid")
	}
	if _, err := NewSuspension(fluid, nil); err == nil {
		t.Error("want error for empty suspension")
	}
}

func TestCellAdvectsDownstream(t *testing.T) {
	_, sp := flowCase(t, 8, 2, 16)
	start := sp.Cells[0].Centroid()
	// Let the flow develop, then watch the cell ride it.
	if err := sp.Run(400); err != nil {
		t.Fatal(err)
	}
	end := sp.Cells[0].Centroid()
	if end.X <= start.X {
		t.Errorf("cell did not advect downstream: x %v -> %v", start.X, end.X)
	}
	// Lateral drift stays small on the axis.
	if math.Abs(end.Y-start.Y) > 1.0 || math.Abs(end.Z-start.Z) > 1.0 {
		t.Errorf("cell drifted off axis: (%v,%v) -> (%v,%v)", start.Y, start.Z, end.Y, end.Z)
	}
}

func TestCellShapePreserved(t *testing.T) {
	_, sp := flowCase(t, 8, 2, 16)
	if err := sp.Run(400); err != nil {
		t.Fatal(err)
	}
	if d := sp.Cells[0].Deformation(); d > 0.5 {
		t.Errorf("stiff cell deformed by %v lattice units", d)
	}
}

func TestSuspensionMassConserved(t *testing.T) {
	fluid, sp := flowCase(t, 8, 2, 16)
	m0 := fluid.TotalMass()
	if err := sp.Run(100); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fluid.TotalMass()-m0) / m0; rel > 1e-7 {
		t.Errorf("mass drifted by %v with IBM forcing", rel)
	}
}

func TestSuspensionStability(t *testing.T) {
	fluid, sp := flowCase(t, 8, 2.5, 32)
	if err := sp.Run(300); err != nil {
		t.Fatal(err)
	}
	if v := fluid.MaxSpeed(); v > 0.1 {
		t.Errorf("coupled run unstable: max speed %v", v)
	}
}

func TestAccountingScalesWithMarkers(t *testing.T) {
	_, sp16 := flowCase(t, 8, 2, 16)
	_, sp32 := flowCase(t, 8, 2, 32)
	a16, a32 := sp16.Account(), sp32.Account()
	if a16.Total() <= 0 {
		t.Fatal("zero accounting")
	}
	if math.Abs(a32.Total()/a16.Total()-2) > 1e-9 {
		t.Errorf("accounting not linear in markers: %v vs %v", a32.Total(), a16.Total())
	}
	if a16.PosBytes <= a16.SpreadBytes {
		t.Error("interpolation (19 dists) should dominate spreading (3 comps)")
	}
	if sp16.Markers() != 16 || sp32.Markers() != 32 {
		t.Error("marker counts wrong")
	}
}

func TestCouplingPerturbsFluid(t *testing.T) {
	// The IBM forces must actually reach the solver: the coupled velocity
	// field differs from a cell-free run of the same flow.
	dom, err := geometry.Cylinder(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	free, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{5e-6, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	free.Run(300)

	_, sp := flowCase(t, 8, 2.5, 32)
	if err := sp.Run(300); err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for si := 0; si < free.N(); si++ {
		_, u0, v0, w0 := free.Macro(si)
		_, u1, v1, w1 := sp.Fluid.Macro(si)
		d := math.Abs(u1-u0) + math.Abs(v1-v0) + math.Abs(w1-w0)
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-9 {
		t.Errorf("coupled field identical to free field (max diff %v): forces not applied", maxDiff)
	}
	// A membrane deformed by shear resists it: the coupled flow carries
	// less kinetic energy than the free flow at the same driving force.
	energy := func(s *lbm.Sparse) float64 {
		var e float64
		for si := 0; si < s.N(); si++ {
			_, ux, uy, uz := s.Macro(si)
			e += ux*ux + uy*uy + uz*uz
		}
		return e
	}
	if ec, ef := energy(sp.Fluid), energy(free); ec >= ef {
		t.Errorf("suspension did not dissipate: coupled %v vs free %v", ec, ef)
	}
}
