// Package cells adds the deformable-cell terms of the paper's full
// performance model (Eq. 2): HARVEY supports "explicit deformable cells
// modeled with the Immersed Boundary Method", whose runtime contributes
// t_pos (marker advection by interpolated fluid velocity), t_forces
// (elastic restoring forces) and the force spread back to the lattice.
// This package implements that coupling — a marker-and-spring immersed
// boundary suspension over the sparse LBM engine — together with the
// per-timestep byte accounting those model terms consume.
//
// The membrane model is deliberately simple (markers tethered to a rigid
// reference shape about a free centroid): it advects with the flow,
// resists deformation, and exercises exactly the interpolate/compute/
// spread memory-access pattern whose cost Eq. 2 prices.
package cells

import (
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

// Cell is one suspended deformable body: markers plus their reference
// offsets from the centroid.
type Cell struct {
	Markers   []geometry.Vec3 // current marker positions, lattice units
	ref       []geometry.Vec3 // reference offsets from the centroid
	Stiffness float64         // spring constant toward the reference shape
}

// NewSphereCell builds a cell with markers on a sphere of the given
// radius about center, using a Fibonacci lattice for even coverage.
func NewSphereCell(center geometry.Vec3, radius float64, markers int, stiffness float64) (*Cell, error) {
	if markers < 4 {
		return nil, fmt.Errorf("cells: need at least 4 markers, got %d", markers)
	}
	if radius <= 0 || stiffness <= 0 {
		return nil, fmt.Errorf("cells: radius %g and stiffness %g must be positive", radius, stiffness)
	}
	c := &Cell{Stiffness: stiffness}
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < markers; i++ {
		y := 1 - 2*float64(i)/float64(markers-1) // 1 .. -1
		r := math.Sqrt(math.Max(0, 1-y*y))
		th := golden * float64(i)
		c.ref = append(c.ref, geometry.Vec3{
			X: radius * r * math.Cos(th),
			Y: radius * y,
			Z: radius * r * math.Sin(th),
		})
	}
	// Center the reference offsets exactly: the net elastic force on the
	// fluid is -k * sum(ref) about the free centroid, so any residual mean
	// would inject spurious momentum every timestep.
	var mean geometry.Vec3
	for _, o := range c.ref {
		mean.X += o.X
		mean.Y += o.Y
		mean.Z += o.Z
	}
	n := float64(markers)
	mean = geometry.Vec3{X: mean.X / n, Y: mean.Y / n, Z: mean.Z / n}
	for i := range c.ref {
		c.ref[i] = c.ref[i].Sub(mean)
		c.Markers = append(c.Markers, geometry.Vec3{
			X: center.X + c.ref[i].X,
			Y: center.Y + c.ref[i].Y,
			Z: center.Z + c.ref[i].Z,
		})
	}
	return c, nil
}

// Centroid returns the mean marker position.
func (c *Cell) Centroid() geometry.Vec3 {
	var s geometry.Vec3
	for _, m := range c.Markers {
		s.X += m.X
		s.Y += m.Y
		s.Z += m.Z
	}
	n := float64(len(c.Markers))
	return geometry.Vec3{X: s.X / n, Y: s.Y / n, Z: s.Z / n}
}

// Deformation returns the RMS distance of markers from their reference
// positions about the current centroid — zero for an undeformed cell.
func (c *Cell) Deformation() float64 {
	ctr := c.Centroid()
	var ss float64
	for i, m := range c.Markers {
		dx := m.X - (ctr.X + c.ref[i].X)
		dy := m.Y - (ctr.Y + c.ref[i].Y)
		dz := m.Z - (ctr.Z + c.ref[i].Z)
		ss += dx*dx + dy*dy + dz*dz
	}
	return math.Sqrt(ss / float64(len(c.Markers)))
}

// Suspension couples cells to a fluid solver through the immersed
// boundary cycle.
type Suspension struct {
	Fluid *lbm.Sparse
	Cells []*Cell

	force []float64 // the solver's per-site force field

	// Accounting of the Eq. 2 terms, per timestep (constant given the
	// marker count): bytes touched by interpolation (t_pos), force
	// computation (t_forces) and spreading.
	markerCount int

	// Compliant vessel walls, attached via AddWalls (may be empty).
	walls       []*Wall
	wallMarkers int
}

// NewSuspension validates that every marker starts inside fluid and wires
// the per-site force field.
func NewSuspension(fluid *lbm.Sparse, cellList []*Cell) (*Suspension, error) {
	if len(cellList) == 0 {
		return nil, fmt.Errorf("cells: empty suspension")
	}
	sp := &Suspension{Fluid: fluid, Cells: cellList, force: fluid.EnableSiteForces()}
	for ci, c := range cellList {
		for mi, m := range c.Markers {
			if !sp.inFluid(m) {
				return nil, fmt.Errorf("cells: cell %d marker %d at (%.1f,%.1f,%.1f) is not in fluid",
					ci, mi, m.X, m.Y, m.Z)
			}
			sp.markerCount++
		}
	}
	return sp, nil
}

// inFluid reports whether all eight trilinear support sites of p are
// fluid (the coupling stencil must not straddle solid).
func (sp *Suspension) inFluid(p geometry.Vec3) bool {
	x0, y0, z0 := int(math.Floor(p.X)), int(math.Floor(p.Y)), int(math.Floor(p.Z))
	for dz := 0; dz <= 1; dz++ {
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				if sp.Fluid.SiteAt(x0+dx, y0+dy, z0+dz) < 0 {
					return false
				}
			}
		}
	}
	return true
}

// trilinear visits the eight support sites of p with their interpolation
// weights. It returns false if any support site is solid.
func (sp *Suspension) trilinear(p geometry.Vec3, visit func(si int, w float64)) bool {
	x0 := math.Floor(p.X)
	y0 := math.Floor(p.Y)
	z0 := math.Floor(p.Z)
	fx, fy, fz := p.X-x0, p.Y-y0, p.Z-z0
	for dz := 0; dz <= 1; dz++ {
		wz := fz
		if dz == 0 {
			wz = 1 - fz
		}
		for dy := 0; dy <= 1; dy++ {
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			for dx := 0; dx <= 1; dx++ {
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				si := sp.Fluid.SiteAt(int(x0)+dx, int(y0)+dy, int(z0)+dz)
				if si < 0 {
					return false
				}
				visit(si, wx*wy*wz)
			}
		}
	}
	return true
}

// Step advances the coupled system one timestep: interpolate velocities
// at the markers, advect them, compute elastic forces, spread the
// reactions onto the lattice, then step the fluid.
func (sp *Suspension) Step() error {
	sp.Fluid.ClearSiteForces()
	for ci, c := range sp.Cells {
		// t_pos: advect markers with the interpolated fluid velocity.
		for mi := range c.Markers {
			var ux, uy, uz float64
			ok := sp.trilinear(c.Markers[mi], func(si int, w float64) {
				_, vx, vy, vz := sp.Fluid.Macro(si)
				ux += w * vx
				uy += w * vy
				uz += w * vz
			})
			if !ok {
				return fmt.Errorf("cells: cell %d marker %d left the fluid", ci, mi)
			}
			c.Markers[mi].X += ux
			c.Markers[mi].Y += uy
			c.Markers[mi].Z += uz
		}
		// t_forces: elastic restoring forces toward the reference shape
		// about the moved centroid. Markers are massless in the classical
		// immersed boundary method: the membrane force acts on the fluid
		// (spread trilinearly), and the no-slip advection above is the
		// only thing that moves markers.
		ctr := c.Centroid()
		for mi := range c.Markers {
			target := geometry.Vec3{X: ctr.X + c.ref[mi].X, Y: ctr.Y + c.ref[mi].Y, Z: ctr.Z + c.ref[mi].Z}
			fx := -c.Stiffness * (c.Markers[mi].X - target.X)
			fy := -c.Stiffness * (c.Markers[mi].Y - target.Y)
			fz := -c.Stiffness * (c.Markers[mi].Z - target.Z)
			if ok := sp.trilinear(c.Markers[mi], func(si int, w float64) {
				sp.force[si*3] += w * fx
				sp.force[si*3+1] += w * fy
				sp.force[si*3+2] += w * fz
			}); !ok {
				return fmt.Errorf("cells: cell %d marker %d left the fluid during force spreading", ci, mi)
			}
		}
	}
	sp.stepWalls()
	sp.Fluid.Step()
	return nil
}

// Run advances the given number of coupled timesteps.
func (sp *Suspension) Run(steps int) error {
	for i := 0; i < steps; i++ {
		if err := sp.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Markers returns the total marker count across all cells.
func (sp *Suspension) Markers() int { return sp.markerCount }

// Accounting quantifies the per-timestep memory traffic of the cell
// terms — the t_pos/t_forces/t_halo-cells inputs Eq. 2 adds on top of
// the fluid-only model.
type Accounting struct {
	PosBytes    float64 // velocity interpolation: 8 sites x 19 dists read per marker
	ForceBytes  float64 // marker state read/write per marker
	SpreadBytes float64 // 8 sites x 3 force components read-modify-write
}

// Total returns the summed cell-term bytes per timestep.
func (a Accounting) Total() float64 { return a.PosBytes + a.ForceBytes + a.SpreadBytes }

// Account returns the suspension's per-timestep byte traffic.
func (sp *Suspension) Account() Accounting {
	m := float64(sp.markerCount)
	const d = 8 // float64
	return Accounting{
		// Macro() reads all 19 distributions at each of 8 support sites.
		PosBytes: m * 8 * lbm.NQ * d,
		// Marker positions and reference offsets: read+write 3 components.
		ForceBytes: m * (3*2 + 3) * d,
		// Spread: read-modify-write 3 force components at 8 sites.
		SpreadBytes: m * 8 * 3 * 2 * d,
	}
}
