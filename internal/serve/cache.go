package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// calibCache is a bounded LRU of calibrations with request coalescing:
// the expensive fill for a missing key runs exactly once, on the first
// caller's goroutine, while concurrent callers for the same key park on
// the fill's done channel. This is the serving layer's core economic
// bet — calibration costs seconds, model evaluation costs microseconds —
// so the cache turns the paper's decision procedure into a hot,
// effectively stateless call.
//
// Fill errors propagate to every parked waiter but are NOT cached: a
// transient failure must not poison the key. Waiters abandoned by their
// own context return its error; the fill keeps running under the filling
// caller and still populates the cache for future requests.
type calibCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element holding *cacheEntry
	fills map[string]*fillCall
}

type cacheEntry struct {
	key string
	val *calibration
}

type fillCall struct {
	done chan struct{}
	val  *calibration
	err  error
}

// cacheResult classifies how a get was satisfied.
type cacheResult int

const (
	cacheMiss cacheResult = iota
	cacheHit
	cacheCoalesced
)

func newCalibCache(capacity int) *calibCache {
	if capacity < 1 {
		capacity = 1
	}
	return &calibCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		fills: make(map[string]*fillCall),
	}
}

// get returns the calibration for key, running build on a miss. The
// cacheResult reports whether the value was resident, built here, or
// built by a concurrent request this call coalesced onto.
func (c *calibCache) get(ctx context.Context, key string, build func() (*calibration, error)) (*calibration, cacheResult, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		entry, ok := el.Value.(*cacheEntry)
		c.mu.Unlock()
		if !ok {
			return nil, cacheHit, fmt.Errorf("serve: cache entry for %q has wrong type", key)
		}
		return entry.val, cacheHit, nil
	}
	if f, ok := c.fills[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, cacheCoalesced, f.err
		case <-ctx.Done():
			return nil, cacheCoalesced, ctx.Err()
		}
	}
	f := &fillCall{done: make(chan struct{})}
	c.fills[key] = f
	c.mu.Unlock()

	f.val, f.err = build()

	c.mu.Lock()
	delete(c.fills, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, cacheMiss, f.err
}

// insertLocked adds a value and evicts from the LRU tail past capacity.
// Caller holds c.mu.
func (c *calibCache) insertLocked(key string, v *calibration) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		if entry, ok := el.Value.(*cacheEntry); ok {
			entry.val = v
		}
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: v})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		if back == nil {
			return
		}
		if entry, ok := back.Value.(*cacheEntry); ok {
			delete(c.items, entry.key)
		}
		c.ll.Remove(back)
	}
}

// len returns the resident entry count.
func (c *calibCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
