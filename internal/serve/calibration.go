package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/simcloud"
)

// calibKey is the calibration cache identity. Determinism contract:
// everything the calibration computes is a pure function of these four
// fields plus server-constant configuration (Samples, the catalog's
// largest node width, the lookup table), so equal keys always yield
// byte-identical model state and the cache can never serve a stale or
// divergent entry. Tier is part of the key because tiers build different
// model state (Tier 0 skips characterization entirely), so predictions
// at different tiers must never share a cache slot.
type calibKey struct {
	System   string
	Workload string // WorkloadSpec.key(): "geometry@scale"
	Seed     int64
	Tier     string // normalized: never empty
}

func (k calibKey) String() string {
	return fmt.Sprintf("%s|%s|%d|%s", k.System, k.Workload, k.Seed, k.Tier)
}

// normalizeTier maps the API's empty tier to the pre-tier default, the
// calibrated Tier 1 path, keeping legacy requests byte-compatible.
func normalizeTier(tier string) string {
	if tier == "" {
		return perfmodel.Tier1Calibrated
	}
	return tier
}

// calibration bundles the expensive model state for one cache key:
// phase one's microbenchmark characterization of the system (Tier 1 and
// auto only — Tier 0 and 2 never pay for it) and phase two's
// anatomy-tuned generalized model, plus memoized decompositions for the
// direct model's rank counts. pred is the tiered front door every
// prediction routes through; tier is the key's normalized tier, stamped
// on each Request.
type calibration struct {
	sys     *machine.System
	tier    string
	pred    *perfmodel.Predictor
	char    *perfmodel.Characterization // nil for tier0/tier2 builds
	summary perfmodel.WorkloadSummary
	general perfmodel.GeneralModel
	solver  *lbm.Sparse
	access  lbm.AccessModel

	mu        sync.Mutex
	workloads map[int]simcloud.Workload
}

// needsCharacterization reports whether the tier's build pays for the
// microbenchmark fit: the calibrated tier and auto (which may serve
// tier1 predictions). Pure physics and measured lookup skip it — that
// skip is the point of the cheap tiers.
func needsCharacterization(tier string) bool {
	return tier == perfmodel.Tier1Calibrated || tier == perfmodel.TierAuto
}

// buildCalibration runs the cold path: characterize the system from
// microbenchmarks (when the tier needs the fit), build the workload
// geometry and solver, and tune the generalized model to it. ctx is
// checked between the expensive stages, so a deadline-bound request
// abandons the build promptly; the stages themselves are
// uninterruptible.
func (s *Server) buildCalibration(ctx context.Context, key calibKey, spec WorkloadSpec) (*calibration, error) {
	sys, err := s.system(key.System)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var char *perfmodel.Characterization
	if needsCharacterization(key.Tier) {
		rng := rand.New(rand.NewSource(key.Seed))
		char, err = perfmodel.Characterize(sys, s.cfg.Samples, rng)
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dom, err := campaign.BuildGeometry(spec.Geometry, spec.Scale)
	if err != nil {
		return nil, &apiError{status: 400, msg: err.Error()}
	}
	solver, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	access := lbm.HarveyAccess()
	var general perfmodel.GeneralModel
	if char != nil {
		general, err = perfmodel.CalibrateGeneral(solver, access, core.CalibrationCounts(solver.N()), s.coresPerNode)
		if err != nil {
			return nil, err
		}
	}
	backends := []perfmodel.Backend{perfmodel.NewPhysicsBackend(sys)}
	if char != nil {
		backends = append(backends, perfmodel.NewCalibratedBackend(char))
	}
	if s.cfg.Table != nil {
		backends = append(backends, perfmodel.NewLookupBackend(sys.Abbrev, s.cfg.Table))
	}
	pred, err := perfmodel.NewPredictor(backends...)
	if err != nil {
		return nil, err
	}
	return &calibration{
		sys:  sys,
		tier: key.Tier,
		pred: pred,
		char: char,
		summary: perfmodel.WorkloadSummary{
			Name:        spec.Geometry,
			Points:      solver.N(),
			BytesSerial: solver.BytesSerial(access),
		},
		general:   general,
		solver:    solver,
		access:    access,
		workloads: make(map[int]simcloud.Workload),
	}, nil
}

// calibrationFor resolves the cache key and serves the calibration from
// the LRU, coalescing concurrent identical builds. tier must already be
// normalized (never empty) — it qualifies the cache key, so predictions
// at different tiers never share an entry.
func (s *Server) calibrationFor(ctx context.Context, system string, spec WorkloadSpec, seed int64, tier string) (*calibration, cacheResult, error) {
	key := calibKey{System: system, Workload: spec.key(), Seed: seed, Tier: tier}
	cal, res, err := s.cache.get(ctx, key.String(), func() (*calibration, error) {
		return s.buildCalibration(ctx, key, spec)
	})
	switch res {
	case cacheHit:
		s.cacheHits.Inc()
	case cacheMiss:
		s.cacheMisses.Inc()
	case cacheCoalesced:
		s.cacheCoalesced.Inc()
	}
	return cal, res, err
}

// workload returns the RCB decomposition at the given rank count,
// memoizing per calibration — the direct model's analogue of the
// cached generalized laws.
func (c *calibration) workload(ranks int) (simcloud.Workload, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workloads[ranks]; ok {
		return w, nil
	}
	p, err := decomp.RCB(c.solver, ranks, c.access)
	if err != nil {
		return simcloud.Workload{}, err
	}
	w := simcloud.FromPartition(c.summary.Name, c.solver.N(), p)
	c.workloads[ranks] = w
	return w, nil
}

// predict evaluates the requested model through the tiered Predictor.
// The calibration's own tier rides on every request: explicit tiers
// route to exactly that backend (a missing one is perfmodel.ErrNoData,
// a 400), auto falls back tier2 → tier1 → tier0 by coverage.
func (c *calibration) predict(model string, ranks int, occupancy float64) (perfmodel.Prediction, error) {
	if model == perfmodel.ModelDirect {
		w, err := c.workload(ranks)
		if err != nil {
			return perfmodel.Prediction{}, err
		}
		return c.pred.Predict(perfmodel.Request{
			Model:     perfmodel.ModelDirect,
			Workload:  &w,
			Occupancy: occupancy,
			Tier:      c.tier,
		})
	}
	return c.pred.Predict(perfmodel.Request{
		Model:   perfmodel.ModelGeneral,
		Summary: &c.summary,
		General: c.general,
		Ranks:   ranks,
		Tier:    c.tier,
	})
}
