package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// campaignManager runs submitted campaigns asynchronously: each accepted
// POST /v1/campaigns spawns one goroutine executing the campaign against
// a fresh seeded Framework, while GET /v1/campaigns/{id} polls the
// record. Capacity is bounded — excess submissions are shed with 429 —
// and drain implements graceful shutdown: stop intake, wait for running
// campaigns, and past the drain deadline interrupt them at their next
// clean point between jobs.
type campaignManager struct {
	systems []*machine.System
	samples int
	max     int
	reg     *obs.Registry

	// newFramework builds the execution framework per submission; a test
	// seam so handler tests can substitute a cheap catalog.
	newFramework func(seed int64) (*core.Framework, error)

	// runCtx parents every campaign run; cancel interrupts them all.
	runCtx context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	wg     sync.WaitGroup
	nextID int
	recs   map[string]*campaignRec
	active int
	closed bool
}

// campaignRec is the mutable status record behind one campaign ID.
// Guarded by campaignManager.mu.
type campaignRec struct {
	id       string
	state    string
	backend  campaign.Backend
	errMsg   string
	report   string
	warnings []string
	spentUSD float64
}

func newCampaignManager(systems []*machine.System, samples, max int, reg *obs.Registry) *campaignManager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &campaignManager{
		systems: systems,
		samples: samples,
		max:     max,
		reg:     reg,
		runCtx:  ctx,
		cancel:  cancel,
		nextID:  1,
		recs:    make(map[string]*campaignRec),
	}
	m.newFramework = func(seed int64) (*core.Framework, error) {
		return core.NewFramework(m.systems, m.samples, seed)
	}
	return m
}

// submit validates and enqueues a campaign, returning its ID. Errors
// carry API statuses: 400 for a bad config, 429 at capacity, 503 after
// shutdown began.
func (m *campaignManager) submit(req CampaignRequest) (CampaignQueuedResponse, error) {
	be, err := campaign.ParseBackend(req.Backend)
	if err != nil {
		return CampaignQueuedResponse{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if len(req.Config) == 0 {
		return CampaignQueuedResponse{}, &apiError{status: http.StatusBadRequest, msg: "config is required"}
	}
	cfg, err := campaign.Load(bytes.NewReader(req.Config))
	if err != nil {
		return CampaignQueuedResponse{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if be == campaign.BackendFleet && cfg.Fleet == nil {
		return CampaignQueuedResponse{}, &apiError{status: http.StatusBadRequest,
			msg: "fleet backend requested but config declares no fleet pool"}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return CampaignQueuedResponse{}, &apiError{status: http.StatusServiceUnavailable, msg: "server shutting down"}
	}
	if m.active >= m.max {
		m.mu.Unlock()
		return CampaignQueuedResponse{}, &apiError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("campaign capacity (%d) full; retry after backoff", m.max)}
	}
	id := fmt.Sprintf("c-%06d", m.nextID)
	m.nextID++
	m.active++
	m.recs[id] = &campaignRec{id: id, state: CampaignQueued, backend: be}
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(id, be, cfg)
	return CampaignQueuedResponse{ID: id, URL: "/v1/campaigns/" + id}, nil
}

// run executes one campaign to completion (or interruption) and writes
// the terminal record.
func (m *campaignManager) run(id string, be campaign.Backend, cfg campaign.Config) {
	defer m.wg.Done()
	m.setState(id, CampaignRunning)

	outcome, err := func() (campaign.Outcome, error) {
		fw, err := m.newFramework(cfg.Seed)
		if err != nil {
			return campaign.Outcome{}, err
		}
		return campaign.Runner{Backend: be}.Run(m.runCtx, fw, cfg)
	}()

	m.mu.Lock()
	rec, ok := m.recs[id]
	if ok {
		rec.backend = outcome.Backend
		rec.report = outcome.Render()
		rec.warnings = outcome.Warnings()
		rec.spentUSD = outcomeSpend(outcome)
		if err != nil {
			rec.state = CampaignFailed
			rec.errMsg = err.Error()
			if errors.Is(err, campaign.ErrInterrupted) {
				rec.errMsg = "interrupted by shutdown; partial results retained"
			}
		} else {
			rec.state = CampaignDone
		}
		m.reg.Counter("serve_campaigns_total", obs.L("state", rec.state)).Inc()
	}
	m.active--
	m.mu.Unlock()
}

func (m *campaignManager) setState(id, state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.recs[id]; ok {
		rec.state = state
	}
}

// status snapshots a campaign record, or a 404 apiError.
func (m *campaignManager) status(id string) (CampaignStatusResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return CampaignStatusResponse{}, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("campaign %q not found", id)}
	}
	return CampaignStatusResponse{
		ID:       rec.id,
		State:    rec.state,
		Backend:  string(rec.backend),
		Error:    rec.errMsg,
		Report:   rec.report,
		Warnings: append([]string(nil), rec.warnings...),
		SpentUSD: rec.spentUSD,
	}, nil
}

// running reports in-flight campaign count (for /v1/healthz).
func (m *campaignManager) running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// drain closes intake and waits for running campaigns. While ctx lives
// the wait is patient; once it expires the manager cancels the shared
// run context — campaigns stop at their next clean point between jobs
// with partial results recorded — and waits for that to land.
func (m *campaignManager) drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	m.cancel()
	<-done
	return fmt.Errorf("serve: drain deadline expired; campaigns interrupted: %w", ctx.Err())
}

// outcomeSpend extracts the money spent from either backend's summary.
func outcomeSpend(o campaign.Outcome) float64 {
	switch {
	case o.Serial != nil:
		return o.Serial.SpentUSD
	case o.Fleet != nil && o.Fleet.Report != nil:
		return o.Fleet.Report.SpentUSD
	}
	return 0
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ack, err := s.campaigns.submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ack)
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.campaigns.status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
