// Package serve is the planner-as-a-service layer: a stdlib-only HTTP
// service exposing the paper's decision procedure — "which cloud
// instances should run this hemodynamic campaign, at what cost?" — as a
// versioned JSON API under /v1.
//
// The paper's economics shape the architecture: calibration (system
// microbenchmarks, anatomy tuning) is expensive while model evaluation
// is microseconds, so calibrations live in an LRU cache keyed by
// (system, workload, seed) with singleflight coalescing, and the
// prediction endpoints become hot, effectively stateless calls.
// Robustness is conventional service hygiene: per-request deadlines, a
// concurrency limiter that sheds load with 429 + Retry-After instead of
// queueing into timeout collapse, request body caps, and graceful
// shutdown that drains in-flight async campaigns. Every request opens
// an obs span and feeds the request/latency/cache metric families that
// GET /v1/metrics exports.
//
// Endpoints:
//
//	POST /v1/predict        single + batch model predictions
//	POST /v1/plan           cost-bounded instance recommendation
//	POST /v1/campaigns      async campaign submission (serial or fleet)
//	GET  /v1/campaigns/{id} campaign status and report
//	GET  /v1/healthz        liveness + cache occupancy
//	GET  /v1/metrics        metrics snapshot (text exposition or JSON)
//	GET  /v1/telemetry      mergeable telemetry snapshot for aggregation
//
// Distributed tracing: every request that carries a traceparent header
// (injected by the cluster router) starts its handler span under that
// remote parent, so multi-process exports stitch into one tree; the
// span's trace ID echoes back in the X-Trace-Id response header.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Config shapes a Server. Zero fields take the documented defaults.
type Config struct {
	// Systems is the candidate instance catalog (default
	// machine.Catalog(), the paper's Table I systems).
	Systems []*machine.System

	// Samples controls microbenchmark averaging per characterization
	// point (default 5, matching the CLIs).
	Samples int

	// Table is the Tier 2 measured-lookup table. Nil loads the embedded
	// default (internal/perfmodel/tables); if that fails, Tier 2 is
	// simply unavailable and explicit tier2 requests answer 400.
	Table *perfmodel.Table

	// DefaultSeed seeds calibrations for requests that omit a seed.
	DefaultSeed int64

	// CacheEntries bounds the calibration LRU (default 64).
	CacheEntries int

	// MaxInflight caps concurrently served planning requests; excess
	// requests are shed with 429 + Retry-After (default 64).
	MaxInflight int

	// MaxCampaigns caps concurrently running async campaigns; excess
	// submissions are shed with 429 (default 4).
	MaxCampaigns int

	// RequestTimeout is the per-request deadline ceiling (default 30s).
	// Requests may tighten it via timeout_ms but never exceed it.
	RequestTimeout time.Duration

	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64

	// Registry and Tracer are the observability sinks; nil values get
	// private instances (the tracer seeded from DefaultSeed).
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

// Server is the planning service. Create with New, mount Handler, and
// Close on shutdown to drain async campaigns.
type Server struct {
	cfg          Config
	systems      map[string]*machine.System
	order        []string // catalog order, for default prediction sweeps
	coresPerNode int      // widest node in the catalog, the calibration width

	cache     *calibCache
	sem       chan struct{}
	campaigns *campaignManager
	jitter    *retryJitter

	reg       *obs.Registry
	tracer    *obs.Tracer
	startWall time.Time
	mux       *http.ServeMux

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheCoalesced *obs.Counter

	// hookAfterAcquire, when set, runs on limited endpoints while the
	// inflight slot is held — a test seam for saturating the limiter
	// deterministically.
	hookAfterAcquire func()
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Systems == nil {
		cfg.Systems = machine.Catalog()
	}
	if len(cfg.Systems) == 0 {
		return nil, fmt.Errorf("serve: empty system catalog")
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 5
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 64
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxCampaigns <= 0 {
		cfg.MaxCampaigns = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Table == nil {
		// Best effort: without a table the service still serves tiers
		// 0/1; explicit tier2 requests get perfmodel.ErrNoData → 400.
		if tbl, err := perfmodel.DefaultTable(); err == nil {
			cfg.Table = tbl
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(cfg.DefaultSeed)
	}
	s := &Server{
		cfg:            cfg,
		systems:        make(map[string]*machine.System, len(cfg.Systems)),
		coresPerNode:   1,
		cache:          newCalibCache(cfg.CacheEntries),
		sem:            make(chan struct{}, cfg.MaxInflight),
		jitter:         newRetryJitter(cfg.DefaultSeed),
		reg:            reg,
		tracer:         tracer,
		startWall:      time.Now(),
		mux:            http.NewServeMux(),
		cacheHits:      reg.Counter("serve_cache_total", obs.L("result", "hit")),
		cacheMisses:    reg.Counter("serve_cache_total", obs.L("result", "miss")),
		cacheCoalesced: reg.Counter("serve_cache_total", obs.L("result", "coalesced")),
	}
	for _, sys := range cfg.Systems {
		if _, dup := s.systems[sys.Abbrev]; dup {
			return nil, fmt.Errorf("serve: duplicate system %q in catalog", sys.Abbrev)
		}
		s.systems[sys.Abbrev] = sys
		s.order = append(s.order, sys.Abbrev)
		if sys.CoresPerNode > s.coresPerNode {
			s.coresPerNode = sys.CoresPerNode
		}
	}
	s.campaigns = newCampaignManager(cfg.Systems, cfg.Samples, cfg.MaxCampaigns, reg)
	s.routes()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains in-flight async campaigns. Under a live ctx it waits for
// them to finish; once ctx expires it interrupts the remaining runs at
// their next clean point and waits for that.
func (s *Server) Close(ctx context.Context) error {
	return s.campaigns.drain(ctx)
}

// system resolves a catalog entry, or a 404 apiError.
func (s *Server) system(abbrev string) (*machine.System, error) {
	if sys, ok := s.systems[abbrev]; ok {
		return sys, nil
	}
	return nil, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("system %q not in catalog", abbrev)}
}

// simNow is the span timeline: seconds of server uptime.
func (s *Server) simNow() float64 { return time.Since(s.startWall).Seconds() }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.instrument("/v1/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /v1/metrics", s.instrument("/v1/metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /v1/telemetry", s.instrument("/v1/telemetry", false, s.handleTelemetry))
	s.mux.HandleFunc("POST /v1/predict", s.instrument("/v1/predict", true, s.handlePredict))
	s.mux.HandleFunc("POST /v1/plan", s.instrument("/v1/plan", true, s.handlePlan))
	s.mux.HandleFunc("POST /v1/campaigns", s.instrument("/v1/campaigns", true, s.handleCampaignSubmit))
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.instrument("/v1/campaigns/status", false, s.handleCampaignStatus))
}

// statusWriter records the response code for metrics and span attrs,
// and stamps every 429 with the server's jittered Retry-After just
// before the header flushes (overriding writeError's static fallback).
type statusWriter struct {
	http.ResponseWriter
	code       int
	retryAfter func() string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
		if code == http.StatusTooManyRequests && w.retryAfter != nil {
			w.Header().Set("Retry-After", w.retryAfter())
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// latencyBuckets spans 50µs to ~1.6ks geometrically — fine enough for a
// p99 on a sub-millisecond cache-warm path.
var latencyBuckets = obs.ExpBuckets(50e-6, 2, 25)

// instrument is the middleware stack applied to every route: span +
// request/latency metrics always; on limited (planning) endpoints also
// the load-shedding concurrency limiter, the body cap, and the
// per-request deadline ceiling.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, retryAfter: s.jitter.next}
		start := time.Now()
		sp := s.startSpan(r, "http "+endpoint)
		if tid := sp.TraceID(); !tid.IsZero() {
			sw.Header().Set("X-Trace-Id", tid.String())
		}
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		defer func() {
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			sp.SetAttr("code", strconv.Itoa(code))
			sp.End(s.simNow())
			s.reg.Counter("serve_requests_total",
				obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code))).Inc()
			s.reg.Histogram("serve_latency_seconds", latencyBuckets,
				obs.L("endpoint", endpoint)).Observe(time.Since(start).Seconds())
		}()

		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.reg.Counter("serve_shed_total", obs.L("endpoint", endpoint)).Inc()
				writeError(sw, http.StatusTooManyRequests, "server saturated; retry after backoff")
				return
			}
			if s.hookAfterAcquire != nil {
				s.hookAfterAcquire()
			}
			inflight := s.reg.Gauge("serve_inflight")
			inflight.Add(1)
			defer inflight.Add(-1)

			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
	}
}

// startSpan opens the request's handler span. A valid traceparent
// header (the router's injection) makes the span a child of the remote
// forward span — one stitched tree per client request; anything else,
// including malformed headers, falls back to a fresh local root.
func (s *Server) startSpan(r *http.Request, name string) *obs.Span {
	if v := r.Header.Get(obs.TraceParentHeader); v != "" {
		if tp, err := obs.ParseTraceParent(v); err == nil {
			return s.tracer.StartRemote(tp, name, s.simNow())
		}
	}
	return s.tracer.Start(name, s.simNow())
}

// apiError is an error with a fixed HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// statusFor maps an error to its response status: apiError's own
// status, 504 for a request that outran its deadline, 503 for one
// cancelled by shutdown, 500 otherwise.
func statusFor(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, perfmodel.ErrNoData):
		// An explicit tier the server has no data for is a client-side
		// request problem, not a server fault.
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but note it in metrics via
		// the caller's instrumented status.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests {
		// Load shedding contract: every 429 names a backoff. This
		// static value is only a fallback — statusWriter overrides it
		// with the server's seeded jitter at WriteHeader time, so
		// client fleets don't retry in lockstep.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// retryJitter deals deterministic Retry-After backoffs in [1, 3]
// seconds from a seeded SplitMix64 stream. Shedding a fleet of clients
// with one constant backoff synchronizes their retries into a thundering
// herd one second later; per-server seeded jitter de-phases them while
// keeping test runs reproducible.
type retryJitter struct {
	mu    sync.Mutex
	state uint64
}

func newRetryJitter(seed int64) *retryJitter {
	return &retryJitter{state: uint64(seed)}
}

// next returns the following backoff in whole seconds, "1".."3".
func (j *retryJitter) next() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	// SplitMix64 step: well-distributed, cheap, reproducible.
	j.state += 0x9e3779b97f4a7c15
	z := j.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return strconv.Itoa(int(z%3) + 1)
}

func writeErr(w http.ResponseWriter, err error) {
	writeError(w, statusFor(err), err.Error())
}

// decodeJSON parses a request body strictly (unknown fields rejected),
// answering 400 on malformed input and 413 past the body cap.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// withTimeoutMS tightens ctx by a request's timeout_ms field. The
// server ceiling already bounds ctx, so this can only shorten.
func withTimeoutMS(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       "ok",
		UptimeS:      s.simNow(),
		CacheEntries: s.cache.len(),
		Campaigns:    s.campaigns.running(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WriteMetricsText(w, snap); err != nil {
		// Mid-stream failure: the status line is already written.
		return
	}
}

// handleTelemetry serves the raw mergeable metric state — counter sums
// and histogram buckets, never quantiles — that the cluster router
// scrapes and folds into fleet-wide aggregates (obs.MergeMetrics).
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.TelemetrySnapshot{
		UptimeS: s.simNow(),
		Metrics: s.reg.Snapshot(),
	})
}

//lint:hot
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := withTimeoutMS(r.Context(), req.TimeoutMS)
	defer cancel()

	systems := req.Systems
	if len(systems) == 0 {
		systems = s.order
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	model := req.Model
	if model == "" {
		model = "generalized"
	}
	tier := normalizeTier(req.Tier)

	resp := PredictResponse{Predictions: make([]PredictionJSON, 0, len(systems)*len(req.Ranks))}
	for _, sysName := range systems {
		cal, res, err := s.calibrationFor(ctx, sysName, req.Workload, seed, tier)
		if err != nil {
			writeErr(w, err)
			return
		}
		switch res {
		case cacheHit:
			resp.CacheHits++
		case cacheMiss:
			resp.CacheMisses++
		case cacheCoalesced:
			resp.CacheCoalesced++
		}
		for _, ranks := range req.Ranks {
			pred, err := cal.predict(model, ranks, req.Occupancy)
			if err != nil {
				writeErr(w, err)
				return
			}
			resp.Predictions = append(resp.Predictions, predictionJSON(pred))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
