package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestConcurrentDrain races campaign submissions against graceful
// shutdown (run under -race in CI): campaigns accepted before Close
// must run to completion while the drain is in progress, and every
// submission arriving after intake closes must get a clean 503 — never
// a hang, never a dropped record.
func TestConcurrentDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxCampaigns: 8})

	// Park accepted campaigns inside the framework builder so they are
	// verifiably in flight when the drain begins.
	gate := make(chan struct{})
	realNew := s.campaigns.newFramework
	s.campaigns.newFramework = func(seed int64) (*core.Framework, error) {
		<-gate
		return realNew(seed)
	}

	const inflight = 3
	acks := make([]CampaignQueuedResponse, 0, inflight)
	for i := 0; i < inflight; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("pre-drain submit %d: %d (%s)", i, resp.StatusCode, data)
		}
		var ack CampaignQueuedResponse
		if err := json.Unmarshal(data, &ack); err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- s.Close(context.Background()) }()

	// Close flips intake off under the manager lock before waiting, but
	// give the goroutine a moment to get there before asserting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("intake never closed after Close began")
		}
		time.Sleep(time.Millisecond)
	}

	// Hammer submissions from many goroutines mid-drain: all must shed
	// 503 while the in-flight campaigns are still parked.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, data := postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("mid-drain submit: %d (%s), want 503", resp.StatusCode, data)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Release the parked campaigns; the patient drain must let them
	// finish and Close must return clean.
	close(gate)
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("drain returned %v with a live context", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Close never returned after campaigns released")
	}
	for _, ack := range acks {
		var st CampaignStatusResponse
		if resp := getJSON(t, ts.URL+ack.URL, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d", ack.ID, resp.StatusCode)
		}
		if st.State != CampaignDone {
			t.Errorf("in-flight campaign %s ended %q (%s), want done", ack.ID, st.State, st.Error)
		}
	}
}

// TestRetryAfterJitter: 429s carry a Retry-After in [1,3] dealt from a
// per-server seeded stream — deterministic for a seed, varying across
// responses so shed clients don't retry in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	a, b := newRetryJitter(9), newRetryJitter(9)
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		va, vb := a.next(), b.next()
		if va != vb {
			t.Fatalf("same-seed jitter diverged at %d: %s vs %s", i, va, vb)
		}
		if va != "1" && va != "2" && va != "3" {
			t.Fatalf("jitter %q outside [1,3]", va)
		}
		seen[va] = true
	}
	if len(seen) < 2 {
		t.Errorf("jitter never varied: %v", seen)
	}
}
