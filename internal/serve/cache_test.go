package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheHammer drives the LRU + singleflight from 32 goroutines
// under -race: every key's expensive build must run at most a handful
// of times (once per residency; eviction can force rebuilds but
// concurrent callers always coalesce), every caller for one key gets
// the same value, and the internal counters stay consistent.
func TestCacheHammer(t *testing.T) {
	const (
		goroutines = 32
		iters      = 200
		keys       = 4
	)
	c := newCalibCache(keys) // capacity >= keys: no eviction churn
	var builds atomic.Int64
	vals := make([]*calibration, keys)
	for i := range vals {
		vals[i] = &calibration{}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				val, _, err := c.get(context.Background(), fmt.Sprintf("key-%d", k), func() (*calibration, error) {
					builds.Add(1)
					time.Sleep(time.Millisecond) // widen the coalescing window
					return vals[k], nil
				})
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if val != vals[k] {
					t.Errorf("key %d returned wrong value", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if n := builds.Load(); n != keys {
		t.Errorf("build ran %d times for %d keys; coalescing failed", n, keys)
	}
	if c.len() != keys {
		t.Errorf("cache holds %d entries, want %d", c.len(), keys)
	}
}

// TestCacheCoalescedResult verifies the three-way result
// classification: first caller misses, resident callers hit, and a
// caller arriving mid-fill reports coalesced.
func TestCacheCoalescedResult(t *testing.T) {
	c := newCalibCache(4)
	val := &calibration{}
	filling := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, res, err := c.get(context.Background(), "k", func() (*calibration, error) {
			close(filling)
			<-release
			return val, nil
		})
		if err != nil || res != cacheMiss {
			t.Errorf("filler: res %v, err %v; want miss", res, err)
		}
	}()
	<-filling

	wg.Add(1)
	go func() {
		defer wg.Done()
		got, res, err := c.get(context.Background(), "k", func() (*calibration, error) {
			t.Error("second build ran during in-flight fill")
			return nil, nil
		})
		if err != nil || res != cacheCoalesced || got != val {
			t.Errorf("waiter: got %p res %v err %v; want coalesced %p", got, res, err, val)
		}
	}()
	// Let the waiter park on the fill before releasing it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	_, res, err := c.get(context.Background(), "k", func() (*calibration, error) {
		t.Error("build ran for resident key")
		return nil, nil
	})
	if err != nil || res != cacheHit {
		t.Errorf("resident: res %v, err %v; want hit", res, err)
	}
}

// TestCacheWaiterHonorsContext: a coalesced waiter abandoned by its own
// deadline returns promptly with the context error while the fill keeps
// going and still lands in the cache.
func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newCalibCache(4)
	val := &calibration{}
	filling := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.get(context.Background(), "k", func() (*calibration, error) {
			close(filling)
			<-release
			return val, nil
		})
		if err != nil {
			t.Errorf("filler: %v", err)
		}
	}()
	<-filling

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := c.get(ctx, "k", func() (*calibration, error) { return nil, nil })
	if err == nil || ctx.Err() == nil {
		t.Errorf("abandoned waiter: err %v, ctx %v; want deadline", err, ctx.Err())
	}

	close(release)
	wg.Wait()
	got, res, err := c.get(context.Background(), "k", func() (*calibration, error) {
		t.Error("build ran again: abandoned fill was lost")
		return nil, nil
	})
	if err != nil || res != cacheHit || got != val {
		t.Errorf("post-abandon: got %p res %v err %v", got, res, err)
	}
}

// TestCacheErrorNotCached: a failed fill propagates but must not poison
// the key.
func TestCacheErrorNotCached(t *testing.T) {
	c := newCalibCache(4)
	boom := fmt.Errorf("transient")
	if _, res, err := c.get(context.Background(), "k", func() (*calibration, error) {
		return nil, boom
	}); err != boom || res != cacheMiss {
		t.Fatalf("failed fill: res %v err %v", res, err)
	}
	val := &calibration{}
	got, res, err := c.get(context.Background(), "k", func() (*calibration, error) {
		return val, nil
	})
	if err != nil || res != cacheMiss || got != val {
		t.Fatalf("retry after failure: got %p res %v err %v", got, res, err)
	}
}

// TestCacheEviction: past capacity the least recently used key is
// evicted and must rebuild on the next request.
func TestCacheEviction(t *testing.T) {
	c := newCalibCache(2)
	builds := map[string]int{}
	fill := func(k string) func() (*calibration, error) {
		return func() (*calibration, error) {
			builds[k]++
			return &calibration{}, nil
		}
	}
	mustGet := func(k string) cacheResult {
		t.Helper()
		_, res, err := c.get(context.Background(), k, fill(k))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	mustGet("a")
	mustGet("b")
	mustGet("a") // refresh a: b is now LRU
	mustGet("c") // evicts b
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if res := mustGet("a"); res != cacheHit {
		t.Errorf("a should be resident, got %v", res)
	}
	if res := mustGet("b"); res != cacheMiss {
		t.Errorf("b should have been evicted, got %v", res)
	}
	if builds["b"] != 2 {
		t.Errorf("b built %d times, want 2", builds["b"])
	}
}
