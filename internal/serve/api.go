package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/perfmodel"
)

// This file defines the versioned JSON vocabulary of the /v1 API. Field
// names are frozen: additive evolution only — a breaking change means a
// /v2 prefix, never a mutation of these shapes.

// WorkloadSpec names a simulation domain in the campaign geometry
// vocabulary at a lattice scale. Together with a system abbreviation and
// a calibration seed it forms the calibration cache key, so two requests
// that agree on these fields share one calibration.
type WorkloadSpec struct {
	Geometry string  `json:"geometry"`
	Scale    float64 `json:"scale"`
}

// key renders the workload component of the cache key. %g keeps it
// deterministic: equal float64 scales render identically.
func (w WorkloadSpec) key() string { return fmt.Sprintf("%s@%g", w.Geometry, w.Scale) }

func (w WorkloadSpec) validate() error {
	if w.Geometry == "" {
		return fmt.Errorf("workload.geometry is required")
	}
	if w.Scale <= 0 {
		return fmt.Errorf("workload.scale %g must be positive", w.Scale)
	}
	return nil
}

// PredictRequest asks for model predictions for one workload across
// instance types and rank counts — the batch is the cross product
// Systems × Ranks. Leaving Systems empty predicts on the server's whole
// catalog (the paper's Table I systems).
type PredictRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Systems  []string     `json:"systems,omitempty"`
	Ranks    []int        `json:"ranks"`

	// Model is perfmodel.ModelDirect or perfmodel.ModelGeneral; empty
	// selects the generalized model, the hot stateless path.
	Model string `json:"model,omitempty"`

	// Tier selects the accuracy tier: "tier0" (physics), "tier1"
	// (calibrated), "tier2" (measured lookup), or "auto" (best
	// available). Empty keeps the pre-tier behavior, the calibrated
	// Tier 1 path — old clients see the responses they always did.
	Tier string `json:"tier,omitempty"`

	// Occupancy models shared-node co-tenancy (direct model only).
	Occupancy float64 `json:"occupancy,omitempty"`

	// Seed selects the calibration noise seed; 0 uses the server
	// default. Identical seeds hit identical cache entries.
	Seed int64 `json:"seed,omitempty"`

	// TimeoutMS tightens this request's deadline below the server
	// ceiling; 0 inherits the ceiling.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r PredictRequest) validate() error {
	if err := r.Workload.validate(); err != nil {
		return err
	}
	if len(r.Ranks) == 0 {
		return fmt.Errorf("ranks is required (one prediction per rank count)")
	}
	for _, k := range r.Ranks {
		if k < 1 {
			return fmt.Errorf("ranks entry %d must be positive", k)
		}
	}
	switch r.Model {
	case "", perfmodel.ModelDirect, perfmodel.ModelGeneral:
	default:
		return fmt.Errorf("model %q must be %q or %q", r.Model, perfmodel.ModelDirect, perfmodel.ModelGeneral)
	}
	if err := validateTier(r.Tier); err != nil {
		return err
	}
	if r.Occupancy < 0 || r.Occupancy > 1 {
		return fmt.Errorf("occupancy %g outside [0,1]", r.Occupancy)
	}
	return nil
}

// validateTier rejects unknown tier values up front (→ 400), naming the
// accepted set. Empty is allowed: it keeps the legacy Tier 1 behavior.
func validateTier(tier string) error {
	switch tier {
	case "", perfmodel.TierAuto, perfmodel.Tier0Physics, perfmodel.Tier1Calibrated, perfmodel.Tier2Measured:
		return nil
	}
	return fmt.Errorf("tier %q must be one of %v (or empty for the default %q)",
		tier, perfmodel.ValidTiers(), perfmodel.Tier1Calibrated)
}

// ConfidenceJSON is a prediction's deterministic confidence band.
type ConfidenceJSON struct {
	LoMFLUPS float64 `json:"lo_mflups"`
	HiMFLUPS float64 `json:"hi_mflups"`
}

func confidenceJSON(b perfmodel.Band) *ConfidenceJSON {
	if b == (perfmodel.Band{}) {
		return nil
	}
	return &ConfidenceJSON{LoMFLUPS: b.LoMFLUPS, HiMFLUPS: b.HiMFLUPS}
}

// PredictionJSON is one model evaluation in a response.
type PredictionJSON struct {
	System         string  `json:"system"`
	Model          string  `json:"model"`
	Ranks          int     `json:"ranks"`
	MFLUPS         float64 `json:"mflups"`
	SecondsPerStep float64 `json:"seconds_per_step"`

	// Runtime composition of the gating task (Figures 9 and 10).
	MemS           float64 `json:"mem_s,omitempty"`
	IntraS         float64 `json:"intra_s,omitempty"`
	InterS         float64 `json:"inter_s,omitempty"`
	CPUGPUs        float64 `json:"cpu_gpu_s,omitempty"`
	CommBandwidthS float64 `json:"comm_bandwidth_s,omitempty"`
	CommLatencyS   float64 `json:"comm_latency_s,omitempty"`

	// Provenance (additive, v1-compatible): which accuracy tier served
	// the prediction, its confidence band, and whether the tier
	// extrapolated beyond its calibration or table coverage.
	Tier         string          `json:"tier,omitempty"`
	Confidence   *ConfidenceJSON `json:"confidence,omitempty"`
	Extrapolated bool            `json:"extrapolated,omitempty"`
}

func predictionJSON(p perfmodel.Prediction) PredictionJSON {
	return PredictionJSON{
		System:         p.System,
		Model:          p.Model,
		Ranks:          p.Ranks,
		MFLUPS:         p.MFLUPS,
		SecondsPerStep: p.SecondsPerStep,
		MemS:           p.MemS,
		IntraS:         p.IntraS,
		InterS:         p.InterS,
		CPUGPUs:        p.CPUGPUs,
		CommBandwidthS: p.CommBandwidthS,
		CommLatencyS:   p.CommLatencyS,
		Tier:           p.Tier,
		Confidence:     confidenceJSON(p.Confidence),
		Extrapolated:   p.Extrapolated,
	}
}

// PredictResponse carries the batch plus this request's cache activity:
// how many calibrations were served from cache, how many it had to run,
// and how many rode on another in-flight request's work.
type PredictResponse struct {
	Predictions    []PredictionJSON `json:"predictions"`
	CacheHits      int              `json:"cache_hits"`
	CacheMisses    int              `json:"cache_misses"`
	CacheCoalesced int              `json:"cache_coalesced"`
}

// PlanRequest asks for a cost-bounded instance recommendation for a
// job of Steps timesteps at Ranks tasks.
type PlanRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Ranks    int          `json:"ranks"`
	Steps    int          `json:"steps"`

	// Objective is max-throughput, min-cost, min-time or max-value
	// (default).
	Objective string `json:"objective,omitempty"`

	// Tier selects the accuracy tier for the assessments (see
	// PredictRequest.Tier); empty keeps the calibrated Tier 1 default.
	Tier string `json:"tier,omitempty"`

	// MaxUSD excludes systems whose predicted job cost exceeds it
	// (0 = unbounded); DeadlineS excludes systems whose predicted time
	// to solution exceeds it (0 = none).
	MaxUSD    float64 `json:"max_usd,omitempty"`
	DeadlineS float64 `json:"deadline_s,omitempty"`

	Systems   []string `json:"systems,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

func (r PlanRequest) validate() error {
	if err := r.Workload.validate(); err != nil {
		return err
	}
	if r.Ranks < 1 {
		return fmt.Errorf("ranks %d must be positive", r.Ranks)
	}
	if r.Steps < 1 {
		return fmt.Errorf("steps %d must be positive", r.Steps)
	}
	if r.MaxUSD < 0 {
		return fmt.Errorf("max_usd %g negative", r.MaxUSD)
	}
	if r.DeadlineS < 0 {
		return fmt.Errorf("deadline_s %g negative", r.DeadlineS)
	}
	return validateTier(r.Tier)
}

// AssessmentJSON is one instance type's predicted verdict for the job.
type AssessmentJSON struct {
	System              string  `json:"system"`
	Ranks               int     `json:"ranks"`
	MFLUPS              float64 `json:"mflups"`
	Seconds             float64 `json:"seconds"`
	USD                 float64 `json:"usd"`
	MFLUPSPerDollarHour float64 `json:"mflups_per_dollar_hour"`

	// Provenance (additive, v1-compatible), mirroring PredictionJSON.
	Tier         string          `json:"tier,omitempty"`
	Confidence   *ConfidenceJSON `json:"confidence,omitempty"`
	Extrapolated bool            `json:"extrapolated,omitempty"`
}

// PlanResponse reports the recommendation. Recommended is null when no
// system satisfies the bounds; Excluded explains each cut.
type PlanResponse struct {
	Recommended *AssessmentJSON  `json:"recommended"`
	Objective   string           `json:"objective"`
	Assessments []AssessmentJSON `json:"assessments"`
	// Pareto is the time/cost frontier among the feasible systems,
	// fastest first — the set worth showing a user who wants to make
	// the trade-off personally.
	Pareto   []AssessmentJSON `json:"pareto,omitempty"`
	Excluded []string         `json:"excluded,omitempty"`
}

// CampaignRequest submits a campaign for asynchronous execution.
// Config is a complete campaign configuration (the same schema the
// campaign and fleet CLIs load); Backend selects the engine: "serial",
// "fleet", or ""/"auto" to infer from the config's fleet block.
type CampaignRequest struct {
	Backend string          `json:"backend,omitempty"`
	Config  json.RawMessage `json:"config"`
}

// CampaignQueuedResponse acknowledges an accepted submission.
type CampaignQueuedResponse struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Campaign lifecycle states.
const (
	CampaignQueued  = "queued"
	CampaignRunning = "running"
	CampaignDone    = "done"
	CampaignFailed  = "failed"
)

// CampaignStatusResponse reports an async campaign's progress. Report
// and the numeric fields populate once the run finishes.
type CampaignStatusResponse struct {
	ID       string   `json:"id"`
	State    string   `json:"state"`
	Backend  string   `json:"backend,omitempty"`
	Error    string   `json:"error,omitempty"`
	Report   string   `json:"report,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
	SpentUSD float64  `json:"spent_usd,omitempty"`
}

// HealthResponse is the /v1/healthz body.
type HealthResponse struct {
	Status       string  `json:"status"`
	UptimeS      float64 `json:"uptime_s"`
	CacheEntries int     `json:"cache_entries"`
	Campaigns    int     `json:"campaigns_inflight"`
}

// ErrorResponse is the uniform error body for every non-2xx status.
type ErrorResponse struct {
	Error string `json:"error"`
}
