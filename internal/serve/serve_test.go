package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// newTestServer builds a Server plus its httptest harness. Config knobs
// default small so calibrations stay cheap.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Samples == 0 {
		cfg.Samples = 1
	}
	if cfg.DefaultSeed == 0 {
		cfg.DefaultSeed = 7
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

const predictBody = `{"workload":{"geometry":"cylinder","scale":5},"systems":["CSP-2"],"ranks":[8]}`

func TestPredictEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("predictions: %d, want 1", len(pr.Predictions))
	}
	p := pr.Predictions[0]
	if p.System != "CSP-2" || p.Ranks != 8 || p.MFLUPS <= 0 || p.SecondsPerStep <= 0 {
		t.Errorf("prediction implausible: %+v", p)
	}
	if p.Model != "generalized" {
		t.Errorf("default model %q, want generalized", p.Model)
	}
	if pr.CacheMisses != 1 || pr.CacheHits != 0 {
		t.Errorf("cold request cache stats: %+v", pr)
	}

	// Second identical request rides the cache.
	resp, data = postJSON(t, ts.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.CacheHits != 1 || pr.CacheMisses != 0 {
		t.Errorf("warm request cache stats: %+v", pr)
	}
}

func TestPredictBatchAcrossCatalogAndDirectModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Empty systems = whole catalog; two rank counts; direct model.
	body := `{"workload":{"geometry":"cylinder","scale":5},"ranks":[4,8],"model":"direct"}`
	resp, data := postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	catalog := 5 // machine.Catalog()
	if len(pr.Predictions) != catalog*2 {
		t.Fatalf("predictions: %d, want %d", len(pr.Predictions), catalog*2)
	}
	for _, p := range pr.Predictions {
		if p.Model != "direct" || p.MFLUPS <= 0 {
			t.Errorf("bad batch entry: %+v", p)
		}
	}
	if pr.CacheMisses != catalog {
		t.Errorf("cold batch misses: %d, want %d", pr.CacheMisses, catalog)
	}
}

func TestMalformedAndInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed predict", "/v1/predict", `{nope`, http.StatusBadRequest},
		{"malformed plan", "/v1/plan", `{"workload":`, http.StatusBadRequest},
		{"malformed campaign", "/v1/campaigns", `[]`, http.StatusBadRequest},
		{"unknown field", "/v1/predict", `{"workloud":{}}`, http.StatusBadRequest},
		{"missing ranks", "/v1/predict", `{"workload":{"geometry":"cylinder","scale":5}}`, http.StatusBadRequest},
		{"bad occupancy", "/v1/predict", `{"workload":{"geometry":"cylinder","scale":5},"ranks":[4],"occupancy":2}`, http.StatusBadRequest},
		{"bad model", "/v1/predict", `{"workload":{"geometry":"cylinder","scale":5},"ranks":[4],"model":"quantum"}`, http.StatusBadRequest},
		{"bad geometry", "/v1/predict", `{"workload":{"geometry":"spleen","scale":5},"ranks":[4]}`, http.StatusBadRequest},
		{"unknown system", "/v1/predict", `{"workload":{"geometry":"cylinder","scale":5},"systems":["VAX-11"],"ranks":[4]}`, http.StatusNotFound},
		{"bad objective", "/v1/plan", `{"workload":{"geometry":"cylinder","scale":5},"ranks":4,"steps":10,"objective":"wat"}`, http.StatusBadRequest},
		{"bad backend", "/v1/campaigns", `{"backend":"mainframe","config":{}}`, http.StatusBadRequest},
		{"campaign bad config", "/v1/campaigns", `{"config":{"budget_usd":0,"jobs":[]}}`, http.StatusBadRequest},
		{"fleet without pool", "/v1/campaigns", `{"backend":"fleet","config":{"budget_usd":1,"jobs":[{"name":"a","geometry":"cylinder","scale":5,"ranks":4,"steps":10}]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, data)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body malformed: %s", tc.name, data)
		}
	}
}

// TestDeadlineExceeded: a server whose request ceiling is already
// expired must answer 504, not hang or 500 — the context checks between
// calibration stages abandon the cold build.
func TestDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})

	resp, data := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, data)
	}
}

// TestShed429 saturates the limiter deterministically: one request
// parks inside the hook while holding the only slot, so the next is
// shed with 429 + Retry-After.
func TestShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hookAfterAcquire = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(predictBody))
		if err != nil {
			t.Errorf("slot-holding request failed: %v", err)
			return
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Error(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	<-entered

	resp, data := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// GET endpoints are exempt from the limiter: health must answer
	// even while the service is saturated.
	var hr HealthResponse
	if resp := getJSON(t, ts.URL+"/v1/healthz", &hr); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation: %d", resp.StatusCode)
	}

	close(release)
	wg.Wait()
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := `{"workload":{"geometry":"cylinder","scale":5},"ranks":16,"steps":1000,"objective":"min-cost"}`
	resp, data := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Recommended == nil {
		t.Fatal("no recommendation")
	}
	if pr.Objective != "min-cost" {
		t.Errorf("objective %q", pr.Objective)
	}
	if len(pr.Assessments) != 5 {
		t.Errorf("assessments: %d, want 5", len(pr.Assessments))
	}
	if len(pr.Pareto) == 0 {
		t.Error("empty Pareto frontier")
	}
	// min-cost recommendation must be the cheapest assessment.
	for _, a := range pr.Assessments {
		if a.USD < pr.Recommended.USD {
			t.Errorf("recommended $%v beaten by %s at $%v", pr.Recommended.USD, a.System, a.USD)
		}
	}
}

func TestPlanBoundsExcludeSystems(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// An absurd cost bound cuts everything: Recommended must be null
	// and every system must be explained in excluded.
	body := `{"workload":{"geometry":"cylinder","scale":5},"ranks":16,"steps":1000,"max_usd":1e-9}`
	resp, data := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Recommended != nil {
		t.Errorf("recommendation under impossible bound: %+v", pr.Recommended)
	}
	if len(pr.Excluded) != 5 {
		t.Errorf("excluded: %d, want 5 (%v)", len(pr.Excluded), pr.Excluded)
	}
}

const campaignSubmitBody = `{"backend":"serial","config":{
  "seed": 3, "budget_usd": 1.0, "objective": "min-cost",
  "jobs": [{"name": "smoke", "geometry": "cylinder", "scale": 5, "ranks": 8, "steps": 200}]}}`

func TestCampaignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var ack CampaignQueuedResponse
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID == "" || ack.URL != "/v1/campaigns/"+ack.ID {
		t.Fatalf("ack malformed: %+v", ack)
	}

	deadline := time.Now().Add(60 * time.Second)
	var st CampaignStatusResponse
	for {
		if resp := getJSON(t, ts.URL+ack.URL, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("status endpoint: %d", resp.StatusCode)
		}
		if st.State == CampaignDone || st.State == CampaignFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != CampaignDone {
		t.Fatalf("campaign failed: %s", st.Error)
	}
	if st.Backend != "serial" || st.SpentUSD <= 0 || !strings.Contains(st.Report, "smoke") {
		t.Errorf("terminal status implausible: %+v", st)
	}
}

func TestCampaignNotFoundAndCapacity(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxCampaigns: 1})

	if resp := getJSON(t, ts.URL+"/v1/campaigns/c-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", resp.StatusCode)
	}

	// Block the only campaign slot inside the framework builder, then
	// overflow it.
	release := make(chan struct{})
	s.campaigns.newFramework = func(seed int64) (*core.Framework, error) {
		<-release
		return nil, fmt.Errorf("stub framework")
	}
	resp, data := postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	close(release)
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if resp, data := postJSON(t, ts.URL+"/v1/predict", predictBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d (%s)", resp.StatusCode, data)
	}

	var hr HealthResponse
	if resp := getJSON(t, ts.URL+"/v1/healthz", &hr); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if hr.Status != "ok" || hr.CacheEntries != 1 {
		t.Errorf("health implausible: %+v", hr)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		`serve_requests_total{code="200",endpoint="/v1/predict"}`,
		"serve_latency_seconds_bucket",
		`serve_cache_total{result="miss"} 1`,
	} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}

	var ms []json.RawMessage
	if resp := getJSON(t, ts.URL+"/v1/metrics?format=json", &ms); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics json: %d", resp.StatusCode)
	}
	if len(ms) == 0 {
		t.Error("json snapshot empty")
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})

	big := `{"workload":{"geometry":"cylinder","scale":5},"ranks":[8],"systems":["` +
		strings.Repeat("x", 200) + `"]}`
	resp, data := postJSON(t, ts.URL+"/v1/predict", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, data)
	}
}

// TestGracefulCloseRejectsNewCampaigns: after Close the manager refuses
// submissions with 503.
func TestGracefulCloseRejectsNewCampaigns(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("close with nothing in flight: %v", err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/campaigns", campaignSubmitBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %d, want 503 (%s)", resp.StatusCode, data)
	}
}
