package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the opt-in debug mux: the net/http/pprof
// endpoints under /debug/pprof/. It is deliberately NOT part of the
// service handler — profiling exposes heap contents and must never
// ride on the public listener. cmd/serve and cmd/cluster mount it on a
// separate listener only when -debug-addr is set; the explicit
// handler registrations below (rather than the package's init side
// effect on http.DefaultServeMux) keep the main mux clean, which
// TestDebugEndpointsAbsentFromMainMux pins down.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
