package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

// predictBodyTier is predictBody plus an explicit tier selector.
func predictBodyTier(tier string) string {
	return `{"workload":{"geometry":"cylinder","scale":5},"systems":["CSP-2"],"ranks":[8],"tier":"` + tier + `"}`
}

// TestPredictUnknownTierRejected asserts the validation contract: an
// unknown tier answers 400 and the error names the accepted set.
func TestPredictUnknownTierRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/predict", "/v1/plan"} {
		body := `{"workload":{"geometry":"cylinder","scale":5},"ranks":[8],"tier":"best"}`
		if path == "/v1/plan" {
			body = `{"workload":{"geometry":"cylinder","scale":5},"ranks":8,"steps":10,"tier":"best"}`
		}
		resp, data := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", path, resp.StatusCode, data)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		for _, want := range perfmodel.ValidTiers() {
			if !strings.Contains(er.Error, want) {
				t.Errorf("%s: error %q does not name valid tier %q", path, er.Error, want)
			}
		}
	}
}

// TestPredictLegacyByteCompat pins the v1 contract for pre-tier clients:
// a request without a tier field yields exactly the predictions an
// explicit tier1 request does (same calibration, same numbers), and the
// response's per-prediction keys are the frozen set plus only the three
// additive provenance fields.
func TestPredictLegacyByteCompat(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, legacy := postJSON(t, ts.URL+"/v1/predict", predictBody)
	_, explicit := postJSON(t, ts.URL+"/v1/predict", predictBodyTier("tier1"))

	var lr, er PredictResponse
	if err := json.Unmarshal(legacy, &lr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(explicit, &er); err != nil {
		t.Fatal(err)
	}
	// The legacy request IS a tier1 request: same cache entry, same
	// predictions byte for byte.
	lp, _ := json.Marshal(lr.Predictions)
	ep, _ := json.Marshal(er.Predictions)
	if string(lp) != string(ep) {
		t.Errorf("legacy predictions differ from explicit tier1:\n%s\n%s", lp, ep)
	}
	if er.CacheHits != 1 {
		t.Errorf("explicit tier1 did not ride the legacy request's cache entry: %+v", er)
	}

	// Frozen keys unchanged; only the documented additive fields appear.
	allowed := map[string]bool{
		"system": true, "model": true, "ranks": true, "mflups": true,
		"seconds_per_step": true, "mem_s": true, "intra_s": true,
		"inter_s": true, "cpu_gpu_s": true, "comm_bandwidth_s": true,
		"comm_latency_s": true,
		// v1 additive provenance:
		"tier": true, "confidence": true, "extrapolated": true,
	}
	var raw struct {
		Predictions []map[string]json.RawMessage `json:"predictions"`
	}
	if err := json.Unmarshal(legacy, &raw); err != nil {
		t.Fatal(err)
	}
	for _, p := range raw.Predictions {
		for k := range p {
			if !allowed[k] {
				t.Errorf("unexpected prediction key %q breaks the frozen v1 shape", k)
			}
		}
		for _, k := range []string{"system", "model", "ranks", "mflups", "seconds_per_step"} {
			if _, ok := p[k]; !ok {
				t.Errorf("frozen key %q missing from legacy response", k)
			}
		}
		if string(p["tier"]) != `"tier1"` {
			t.Errorf("legacy request served at tier %s, want tier1", p["tier"])
		}
	}
}

// TestPredictExplicitTiers exercises each tier end to end and checks the
// provenance that comes back.
func TestPredictExplicitTiers(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, tc := range []struct {
		tier      string
		wantTier  string
		wantModel string
	}{
		{"tier0", "tier0", "generalized"},
		{"tier1", "tier1", "generalized"},
		{"tier2", "tier2", perfmodel.ModelMeasured},
		// Auto resolves to the measured tier: the embedded table covers
		// every catalog system.
		{"auto", "tier2", perfmodel.ModelMeasured},
	} {
		resp, data := postJSON(t, ts.URL+"/v1/predict", predictBodyTier(tc.tier))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tier %s: status %d: %s", tc.tier, resp.StatusCode, data)
		}
		var pr PredictResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		p := pr.Predictions[0]
		if p.Tier != tc.wantTier || p.Model != tc.wantModel {
			t.Errorf("tier %s: served (%s, %s), want (%s, %s)", tc.tier, p.Tier, p.Model, tc.wantTier, tc.wantModel)
		}
		if p.MFLUPS <= 0 || p.SecondsPerStep <= 0 {
			t.Errorf("tier %s: implausible prediction %+v", tc.tier, p)
		}
		if p.Confidence == nil {
			t.Errorf("tier %s: missing confidence band", tc.tier)
		} else if p.Confidence.LoMFLUPS >= p.MFLUPS || p.Confidence.HiMFLUPS <= p.MFLUPS {
			t.Errorf("tier %s: band %+v does not bracket %g", tc.tier, p.Confidence, p.MFLUPS)
		}
	}
}

// TestPredictCrossTierCacheIsolation asserts the cache key is
// tier-qualified: the same (system, workload, seed) at different tiers
// builds separate entries, and repeats within one tier still hit.
func TestPredictCrossTierCacheIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	for i, tier := range []string{"tier1", "tier0", "tier2", "auto"} {
		_, data := postJSON(t, ts.URL+"/v1/predict", predictBodyTier(tier))
		var pr PredictResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.CacheMisses != 1 || pr.CacheHits != 0 {
			t.Errorf("cold %s request (#%d) cache stats %+v, want one miss", tier, i, pr)
		}
		_, data = postJSON(t, ts.URL+"/v1/predict", predictBodyTier(tier))
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.CacheHits != 1 || pr.CacheMisses != 0 {
			t.Errorf("warm %s request cache stats %+v, want one hit", tier, pr)
		}
	}
	if got := s.cache.len(); got != 4 {
		t.Errorf("cache entries %d, want 4 (one per tier)", got)
	}
}

// TestPredictTier2NoDataIs400: an explicit tier2 request for a system
// the lookup table does not cover is the client's problem (ErrNoData →
// 400), never a 500.
func TestPredictTier2NoDataIs400(t *testing.T) {
	tbl, err := perfmodel.LoadTable(strings.NewReader(
		"system,kernel,points,ranks,mflups\nCSP-2,harvey,22069,8,100\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Table: tbl})

	body := `{"workload":{"geometry":"cylinder","scale":5},"systems":["TRC"],"ranks":[8],"tier":"tier2"}`
	resp, data := postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
		t.Fatalf("error body malformed: %s", data)
	}
	// Auto on the same uncovered system falls back instead of failing.
	body = `{"workload":{"geometry":"cylinder","scale":5},"systems":["TRC"],"ranks":[8],"tier":"auto"}`
	resp, data = postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto fallback status %d: %s", resp.StatusCode, data)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Predictions[0].Tier != perfmodel.Tier1Calibrated {
		t.Errorf("auto on uncovered system served tier %q, want tier1", pr.Predictions[0].Tier)
	}
}

// TestPlanTierProvenance: /v1/plan threads the tier through assessment
// and reports provenance on every row.
func TestPlanTierProvenance(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := `{"workload":{"geometry":"cylinder","scale":5},"ranks":8,"steps":100,"tier":"tier0"}`
	resp, data := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Assessments) == 0 || pr.Recommended == nil {
		t.Fatalf("empty plan: %s", data)
	}
	for _, a := range pr.Assessments {
		if a.Tier != perfmodel.Tier0Physics {
			t.Errorf("%s assessed at tier %q, want tier0", a.System, a.Tier)
		}
		if a.Confidence == nil {
			t.Errorf("%s assessment missing confidence band", a.System)
		}
	}
	if pr.Recommended.Tier != perfmodel.Tier0Physics {
		t.Errorf("recommendation tier %q, want tier0", pr.Recommended.Tier)
	}
}
