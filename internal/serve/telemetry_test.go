package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTelemetryEndpointRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Generate some traffic first so the snapshot has RED state.
	resp, data := postJSON(t, ts.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, data)
	}

	var snap obs.TelemetrySnapshot
	getJSON(t, ts.URL+"/v1/telemetry", &snap)
	if snap.UptimeS <= 0 {
		t.Fatalf("uptime %v, want > 0", snap.UptimeS)
	}
	var reqs, lat bool
	for _, m := range snap.Metrics {
		if m.Name == "serve_requests_total" && m.Type == "counter" && m.Label("code") == "200" {
			reqs = true
		}
		if m.Name == "serve_latency_seconds" && m.Type == "histogram" {
			lat = true
			if len(m.Counts) != len(m.BucketLE)+1 {
				t.Fatalf("histogram not mergeable: %d counts for %d bounds", len(m.Counts), len(m.BucketLE))
			}
			if m.Count == 0 {
				t.Fatalf("latency histogram empty after a request")
			}
		}
	}
	if !reqs || !lat {
		t.Fatalf("snapshot missing RED metrics (reqs=%v lat=%v)", reqs, lat)
	}

	// The wire state must merge cleanly into an empty aggregate.
	if _, err := obs.MergeMetrics(nil, snap.Metrics); err != nil {
		t.Fatalf("snapshot does not merge: %v", err)
	}
}

func TestTraceParentExtraction(t *testing.T) {
	tracer := obs.NewTracer(5)
	s, ts := newTestServer(t, Config{Tracer: tracer})

	// Simulate the router: mint a forward span in another tracer and
	// inject its context.
	router := obs.NewTracer(1)
	fwd := router.StartChild(router.Start("router /v1/healthz", 0), "forward r0", 0)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceParentHeader, fwd.TraceParent().String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("want exactly one handler span, got %d", len(spans))
	}
	if spans[0].Parent != fwd.ID().String() {
		t.Fatalf("handler parent %q, want forward span %q", spans[0].Parent, fwd.ID().String())
	}
	if spans[0].TraceID != fwd.TraceID().String() {
		t.Fatalf("handler trace %q, want %q", spans[0].TraceID, fwd.TraceID().String())
	}
	if got := resp.Header.Get("X-Trace-Id"); got != fwd.TraceID().String() {
		t.Fatalf("X-Trace-Id %q, want %q", got, fwd.TraceID().String())
	}
	_ = s
}

func TestMalformedTraceParentFallsBackToRoot(t *testing.T) {
	tracer := obs.NewTracer(5)
	_, ts := newTestServer(t, Config{Tracer: tracer})

	for _, h := range []string{"garbage", strings.Repeat("0", 55), "00-XYZ-1-01"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(obs.TraceParentHeader, h)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("header %q broke the request: %d", h, resp.StatusCode)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for i, sp := range tracer.Spans() {
		if sp.Parent != "" {
			t.Fatalf("span %d has parent %q from a malformed header", i, sp.Parent)
		}
		if sp.TraceID == "" {
			t.Fatalf("span %d has no fresh root trace", i)
		}
	}
}

func TestDebugEndpointsAbsentFromMainMux(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp := getJSON(t, ts.URL+p, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on the main mux: %d, want 404 (pprof must be opt-in)", p, resp.StatusCode)
		}
	}
}

func TestDebugHandlerServesPprof(t *testing.T) {
	ts := httptest.NewServer(DebugHandler())
	t.Cleanup(ts.Close)
	resp := getJSON(t, ts.URL+"/debug/pprof/", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index on the debug mux: %d", resp.StatusCode)
	}
}
