package serve

import (
	"fmt"
	"net/http"

	"repro/internal/dashboard"
)

func assessmentJSON(a dashboard.Assessment) AssessmentJSON {
	return AssessmentJSON{
		System:              a.System,
		Ranks:               a.Ranks,
		MFLUPS:              a.MFLUPS,
		Seconds:             a.Seconds,
		USD:                 a.USD,
		MFLUPSPerDollarHour: a.MFLUPSPerDollarHour,
		Tier:                a.Tier,
		Confidence:          confidenceJSON(a.Confidence),
		Extrapolated:        a.Extrapolated,
	}
}

// handlePlan runs the dashboard decision procedure over the requested
// (or whole) catalog: assess every system with the anatomy-tuned
// generalized model, cut the ones that bust the cost or deadline bound,
// recommend under the objective, and report the time/cost Pareto
// frontier of what's left.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obj, err := dashboard.ParseObjective(req.Objective)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := withTimeoutMS(r.Context(), req.TimeoutMS)
	defer cancel()

	systems := req.Systems
	if len(systems) == 0 {
		systems = s.order
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	tier := normalizeTier(req.Tier)

	// The generalized model's laws are machine-independent (each
	// calibration tunes them against the same solver at the same node
	// width), so the first calibration's summary+laws serve the whole
	// assessment; each entry contributes its own machine characterization
	// and tiered predictor.
	entries := make([]dashboard.Entry, 0, len(systems))
	var first *calibration
	for _, name := range systems {
		cal, _, err := s.calibrationFor(ctx, name, req.Workload, seed, tier)
		if err != nil {
			writeErr(w, err)
			return
		}
		if first == nil {
			first = cal
		}
		entries = append(entries, dashboard.Entry{System: cal.sys, Char: cal.char, Predictor: cal.pred})
	}
	d := &dashboard.Dashboard{Entries: entries}
	as, err := d.AssessTier(first.summary, first.general, req.Ranks, req.Steps, tier)
	if err != nil {
		writeErr(w, err)
		return
	}

	var kept []dashboard.Assessment
	resp := PlanResponse{Objective: obj.String()}
	for _, a := range as {
		resp.Assessments = append(resp.Assessments, assessmentJSON(a))
		switch {
		case req.MaxUSD > 0 && a.USD > req.MaxUSD:
			resp.Excluded = append(resp.Excluded,
				fmt.Sprintf("%s: predicted $%.4f exceeds max_usd $%.4f", a.System, a.USD, req.MaxUSD))
		case req.DeadlineS > 0 && a.Seconds > req.DeadlineS:
			resp.Excluded = append(resp.Excluded,
				fmt.Sprintf("%s: predicted %.1fs exceeds deadline_s %.1f", a.System, a.Seconds, req.DeadlineS))
		default:
			kept = append(kept, a)
		}
	}
	if len(kept) > 0 {
		best, err := dashboard.Recommend(kept, obj, 0)
		if err != nil {
			writeErr(w, err)
			return
		}
		bj := assessmentJSON(best)
		resp.Recommended = &bj
		for _, a := range dashboard.Pareto(kept) {
			resp.Pareto = append(resp.Pareto, assessmentJSON(a))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
