// Package mbench implements the microbenchmarks the paper characterizes
// systems with: the STREAM memory-bandwidth benchmark (Copy, Scale, Add,
// Triad over an OpenMP-style thread sweep) and an Intel-MPI-Benchmark-
// style PingPong (message time over a size sweep, intra- and inter-node).
//
// Each benchmark comes in two forms: a simulated form that samples a
// modeled machine.System (how the CSP Option Dashboard characterizes
// catalog systems in this reproduction) and a host form that measures the
// machine the library is running on with real memory traffic and real
// goroutine message passing.
package mbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/units"
)

// StreamPoint is one STREAM observation: sustained bandwidth with a given
// number of worker threads.
type StreamPoint struct {
	Threads       int
	BandwidthMBps float64
}

// StreamSweepSim samples the modeled system's STREAM Copy bandwidth for
// thread counts 1..max (one thread per core, or per vCPU when hyper is
// set, mirroring the paper's "CSP-2 Hyp." instance). samples draws per
// thread count are averaged; rng may be nil for the noiseless curve.
func StreamSweepSim(sys *machine.System, hyper bool, samples int, rng *rand.Rand) []StreamPoint {
	maxThreads := sys.CoresPerNode
	if hyper {
		maxThreads *= sys.VCPUsPerCore
	}
	if samples < 1 {
		samples = 1
	}
	pts := make([]StreamPoint, 0, maxThreads)
	for n := 1; n <= maxThreads; n++ {
		var sum float64
		for s := 0; s < samples; s++ {
			if rng == nil {
				sum += sys.Mem.Bandwidth(float64(n))
			} else {
				sum += sys.SampleBandwidth(n, hyper, rng)
			}
		}
		pts = append(pts, StreamPoint{Threads: n, BandwidthMBps: sum / float64(samples)})
	}
	return pts
}

// FitStream fits the paper's two-line model (Eq. 8) to a STREAM sweep.
func FitStream(pts []StreamPoint) (fit.TwoLine, error) {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.Threads)
		ys[i] = p.BandwidthMBps
	}
	return fit.TwoLineLSQ(xs, ys)
}

// PingPongPoint is one PingPong observation: one-way message time for a
// given payload.
type PingPongPoint struct {
	Bytes  float64
	TimeUS float64
}

// DefaultMessageSizes returns the IMB-style size sweep: 0 bytes plus
// powers of two from 1 B to 4 MiB.
func DefaultMessageSizes() []float64 {
	sizes := []float64{0}
	for b := 1.0; b <= 4*1024*1024; b *= 2 {
		sizes = append(sizes, b)
	}
	return sizes
}

// PingPongSweepSim samples the modeled system's message time over the
// given sizes. intra selects the on-node link; samples draws per size are
// averaged; rng may be nil for the noiseless curve.
func PingPongSweepSim(sys *machine.System, intra bool, sizes []float64, samples int, rng *rand.Rand) []PingPongPoint {
	if samples < 1 {
		samples = 1
	}
	pts := make([]PingPongPoint, 0, len(sizes))
	for _, m := range sizes {
		var sum float64
		for s := 0; s < samples; s++ {
			if rng == nil {
				link := sys.InterNode
				if intra {
					link = sys.IntraNode
				}
				sum += link.TimeUS(m)
			} else {
				sum += sys.SampleMessageTimeUS(m, intra, rng)
			}
		}
		pts = append(pts, PingPongPoint{Bytes: m, TimeUS: sum / float64(samples)})
	}
	return pts
}

// PCIeSweepSim samples host-device transfer times over the given sizes on
// a GPU instance (the bandwidthTest-style sweep that characterizes
// Eq. 2's t_CPU-GPU term). It returns an error-free sweep only for GPU
// systems; CPU-only systems yield nil.
func PCIeSweepSim(sys *machine.System, sizes []float64, samples int, rng *rand.Rand) []PingPongPoint {
	if sys.GPU == nil {
		return nil
	}
	if samples < 1 {
		samples = 1
	}
	pts := make([]PingPongPoint, 0, len(sizes))
	for _, m := range sizes {
		var sum float64
		for s := 0; s < samples; s++ {
			if rng == nil {
				sum += sys.GPU.PCIe.TimeUS(m)
			} else {
				sum += sys.SamplePCIeTimeUS(m, rng)
			}
		}
		pts = append(pts, PingPongPoint{Bytes: m, TimeUS: sum / float64(samples)})
	}
	return pts
}

// FitPingPong fits the linear communication model (Eq. 12) to a PingPong
// sweep the way the paper does: latency is pinned to the zero-byte
// message time, and bandwidth is fitted over all points. The returned
// link model carries bandwidth in MB/s and latency in microseconds.
func FitPingPong(pts []PingPongPoint) (machine.LinkModel, fit.Linear, error) {
	if len(pts) < 2 {
		return machine.LinkModel{}, fit.Linear{}, fmt.Errorf("mbench: need at least 2 PingPong points, have %d", len(pts))
	}
	var latency float64
	zeroSeen := false
	var xs, ys []float64
	for _, p := range pts {
		//lint:ignore floateq the zero-byte message is the latency sample by definition (paper pins intercept to it)
		if p.Bytes == 0 {
			latency = p.TimeUS
			zeroSeen = true
			continue
		}
		xs = append(xs, p.Bytes)
		ys = append(ys, p.TimeUS)
	}
	if !zeroSeen {
		// Fall back to the smallest message as the latency anchor.
		smallest := 0
		for i := range pts {
			if pts[i].Bytes < pts[smallest].Bytes {
				smallest = i
			}
		}
		latency = pts[smallest].TimeUS
	}
	line, err := fit.LinearThroughPoint(xs, ys, latency)
	if err != nil {
		return machine.LinkModel{}, fit.Linear{}, err
	}
	if line.Slope <= 0 {
		return machine.LinkModel{}, line, fmt.Errorf("mbench: non-positive PingPong slope %g", line.Slope)
	}
	// Slope is µs per byte; 1 byte/µs = 1 MB/s, so bandwidth = 1/slope.
	link := machine.LinkModel{BandwidthMBps: 1 / line.Slope, LatencyUS: latency}
	return link, line, nil
}

// StreamKernel names one of the four STREAM kernels.
type StreamKernel int

// The four STREAM kernels.
const (
	Copy StreamKernel = iota
	Scale
	Add
	Triad
)

// String returns the STREAM kernel name.
func (k StreamKernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	}
	return fmt.Sprintf("StreamKernel(%d)", int(k))
}

// bytesPerElement returns the memory traffic per element for a kernel:
// Copy and Scale move two words, Add and Triad three.
func (k StreamKernel) bytesPerElement() int {
	if k == Copy || k == Scale {
		return 16
	}
	return 24
}

// StreamHost measures the host's sustainable bandwidth for one kernel
// with the given number of worker goroutines over arrays of n float64
// elements, taking the best of iters trials (STREAM's convention).
// It returns MB/s.
func StreamHost(kernel StreamKernel, threads, n, iters int) (float64, error) {
	if threads < 1 || n < threads || iters < 1 {
		return 0, fmt.Errorf("mbench: bad StreamHost arguments threads=%d n=%d iters=%d", threads, n, iters)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	const scalar = 3.0
	gomax := runtime.GOMAXPROCS(0)
	if threads > gomax {
		threads = gomax
	}
	best := 0.0
	for it := 0; it < iters; it++ {
		start := time.Now()
		var wg sync.WaitGroup
		chunk := (n + threads - 1) / threads
		for t := 0; t < threads; t++ {
			lo := t * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				switch kernel {
				case Copy:
					copy(c[lo:hi], a[lo:hi])
				case Scale:
					for i := lo; i < hi; i++ {
						b[i] = scalar * c[i]
					}
				case Add:
					for i := lo; i < hi; i++ {
						c[i] = a[i] + b[i]
					}
				case Triad:
					for i := lo; i < hi; i++ {
						a[i] = b[i] + scalar*c[i]
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		if secs <= 0 {
			continue
		}
		bw := units.BpsToMBps(float64(n*kernel.bytesPerElement()) / secs)
		if bw > best {
			best = bw
		}
	}
	//lint:ignore floateq best stays exactly 0 only when every trial was discarded
	if best == 0 {
		return 0, fmt.Errorf("mbench: StreamHost measured no usable trial")
	}
	return best, nil
}

// StreamHostSweep measures the host's STREAM bandwidth over a thread
// sweep 1..maxThreads (the paper's OpenMP sweep) and returns the points
// ready for the Eq. 8 two-line fit.
func StreamHostSweep(kernel StreamKernel, maxThreads, n, iters int) ([]StreamPoint, error) {
	if maxThreads < 1 {
		return nil, fmt.Errorf("mbench: maxThreads %d must be positive", maxThreads)
	}
	pts := make([]StreamPoint, 0, maxThreads)
	for t := 1; t <= maxThreads; t++ {
		bw, err := StreamHost(kernel, t, n, iters)
		if err != nil {
			return nil, err
		}
		pts = append(pts, StreamPoint{Threads: t, BandwidthMBps: bw})
	}
	return pts, nil
}

// PingPongHost measures one-way message time in microseconds between two
// goroutines exchanging byte buffers over channels, the host analogue of
// the intranodal PingPong. The receiver copies the payload (as MPI does)
// before replying.
func PingPongHost(bytes, iters int) (float64, error) {
	if bytes < 0 || iters < 1 {
		return 0, fmt.Errorf("mbench: bad PingPongHost arguments bytes=%d iters=%d", bytes, iters)
	}
	ping := make(chan []byte)
	pong := make(chan []byte)
	scratch := make([]byte, bytes)
	go func() {
		for msg := range ping {
			copy(scratch, msg)
			pong <- scratch
		}
	}()
	payload := make([]byte, bytes)
	// Warm-up round.
	ping <- payload
	<-pong
	start := time.Now()
	for i := 0; i < iters; i++ {
		ping <- payload
		<-pong
	}
	elapsed := time.Since(start).Seconds()
	close(ping)
	return units.SecondsToMicros(elapsed / float64(iters) / 2), nil
}
