package mbench

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

func TestStreamSweepSimNoiseless(t *testing.T) {
	sys := machine.NewTRC()
	pts := StreamSweepSim(sys, false, 1, nil)
	if len(pts) != sys.CoresPerNode {
		t.Fatalf("sweep has %d points, want %d", len(pts), sys.CoresPerNode)
	}
	for i, p := range pts {
		if p.Threads != i+1 {
			t.Fatalf("point %d has threads %d", i, p.Threads)
		}
		want := sys.Mem.Bandwidth(float64(p.Threads))
		if math.Abs(p.BandwidthMBps-want) > 1e-9 {
			t.Fatalf("noiseless point deviates from model: %v vs %v", p.BandwidthMBps, want)
		}
	}
}

func TestStreamSweepSimHyperthreaded(t *testing.T) {
	sys := machine.NewCSP2()
	pts := StreamSweepSim(sys, true, 3, rand.New(rand.NewSource(1)))
	if len(pts) != sys.CoresPerNode*sys.VCPUsPerCore {
		t.Fatalf("hyperthreaded sweep has %d points, want %d", len(pts), 72)
	}
	// Bandwidth beyond physical cores must not exceed the physical peak.
	peak := 0.0
	for _, p := range pts[:sys.CoresPerNode] {
		peak = math.Max(peak, p.BandwidthMBps)
	}
	for _, p := range pts[sys.CoresPerNode:] {
		if p.BandwidthMBps > peak*1.05 {
			t.Errorf("HT bandwidth %v exceeds physical peak %v", p.BandwidthMBps, peak)
		}
	}
}

func TestFitStreamRecoversTable3(t *testing.T) {
	// Characterizing a noiseless modeled system must recover its Table III
	// parameters — the round trip at the heart of the framework.
	for _, sys := range machine.Catalog() {
		pts := StreamSweepSim(sys, false, 1, nil)
		got, err := FitStream(pts)
		if err != nil {
			t.Fatalf("%s: %v", sys.Abbrev, err)
		}
		if rel := math.Abs(got.A1-sys.Mem.A1) / sys.Mem.A1; rel > 0.05 {
			t.Errorf("%s: a1 = %v, want %v", sys.Abbrev, got.A1, sys.Mem.A1)
		}
		if math.Abs(got.A3-sys.Mem.A3) > 1.0 {
			t.Errorf("%s: a3 = %v, want %v", sys.Abbrev, got.A3, sys.Mem.A3)
		}
	}
}

func TestDefaultMessageSizes(t *testing.T) {
	sizes := DefaultMessageSizes()
	if sizes[0] != 0 {
		t.Error("first size must be 0 bytes (latency anchor)")
	}
	if sizes[len(sizes)-1] != 4*1024*1024 {
		t.Errorf("last size %v, want 4 MiB", sizes[len(sizes)-1])
	}
	for i := 2; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Errorf("sizes not doubling at %d: %v after %v", i, sizes[i], sizes[i-1])
		}
	}
}

func TestFitPingPongRecoversLink(t *testing.T) {
	for _, sys := range []*machine.System{machine.NewTRC(), machine.NewCSP2(), machine.NewCSP2EC()} {
		pts := PingPongSweepSim(sys, false, DefaultMessageSizes(), 1, nil)
		link, line, err := FitPingPong(pts)
		if err != nil {
			t.Fatalf("%s: %v", sys.Abbrev, err)
		}
		if rel := math.Abs(link.BandwidthMBps-sys.InterNode.BandwidthMBps) / sys.InterNode.BandwidthMBps; rel > 0.01 {
			t.Errorf("%s: bandwidth %v, want %v", sys.Abbrev, link.BandwidthMBps, sys.InterNode.BandwidthMBps)
		}
		if math.Abs(link.LatencyUS-sys.InterNode.LatencyUS) > 0.01*sys.InterNode.LatencyUS {
			t.Errorf("%s: latency %v, want %v", sys.Abbrev, link.LatencyUS, sys.InterNode.LatencyUS)
		}
		if line.R2 < 0.999 {
			t.Errorf("%s: noiseless fit R² = %v", sys.Abbrev, line.R2)
		}
	}
}

func TestFitPingPongIntraVsInter(t *testing.T) {
	sys := machine.NewCSP2()
	intra, _, err := FitPingPong(PingPongSweepSim(sys, true, DefaultMessageSizes(), 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	inter, _, err := FitPingPong(PingPongSweepSim(sys, false, DefaultMessageSizes(), 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if intra.LatencyUS >= inter.LatencyUS {
		t.Error("intra-node latency should be below inter-node")
	}
	if intra.BandwidthMBps <= inter.BandwidthMBps {
		t.Error("intra-node bandwidth should exceed inter-node")
	}
}

func TestFitPingPongNoisy(t *testing.T) {
	sys := machine.NewCSP2EC()
	pts := PingPongSweepSim(sys, false, DefaultMessageSizes(), 25, rand.New(rand.NewSource(5)))
	link, _, err := FitPingPong(pts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(link.BandwidthMBps-sys.InterNode.BandwidthMBps) / sys.InterNode.BandwidthMBps; rel > 0.1 {
		t.Errorf("noisy bandwidth fit off by %v%%", rel*100)
	}
}

func TestFitPingPongValidation(t *testing.T) {
	if _, _, err := FitPingPong(nil); err == nil {
		t.Error("want error for no points")
	}
	// Without a zero-byte point the smallest message anchors latency.
	pts := []PingPongPoint{{Bytes: 8, TimeUS: 20.1}, {Bytes: 1024, TimeUS: 21}, {Bytes: 1 << 20, TimeUS: 500}}
	link, _, err := FitPingPong(pts)
	if err != nil {
		t.Fatal(err)
	}
	if link.LatencyUS != 20.1 {
		t.Errorf("latency anchor %v, want 20.1", link.LatencyUS)
	}
}

func TestStreamKernelStrings(t *testing.T) {
	want := map[StreamKernel]string{Copy: "Copy", Scale: "Scale", Add: "Add", Triad: "Triad"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if StreamKernel(9).String() != "StreamKernel(9)" {
		t.Error("unknown kernel string wrong")
	}
}

func TestStreamHostRuns(t *testing.T) {
	for _, k := range []StreamKernel{Copy, Scale, Add, Triad} {
		bw, err := StreamHost(k, 2, 1<<20, 3)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		// Any functioning machine moves well over 100 MB/s.
		if bw < 100 {
			t.Errorf("%v: implausible bandwidth %v MB/s", k, bw)
		}
	}
}

func TestStreamHostValidation(t *testing.T) {
	if _, err := StreamHost(Copy, 0, 100, 1); err == nil {
		t.Error("want error for zero threads")
	}
	if _, err := StreamHost(Copy, 8, 4, 1); err == nil {
		t.Error("want error for n < threads")
	}
	if _, err := StreamHost(Copy, 1, 100, 0); err == nil {
		t.Error("want error for zero iters")
	}
}

func TestPingPongHostRuns(t *testing.T) {
	us, err := PingPongHost(4096, 200)
	if err != nil {
		t.Fatal(err)
	}
	if us <= 0 || us > 1e5 {
		t.Errorf("implausible one-way time %v µs", us)
	}
	// Bigger messages must not be faster on average (weak sanity check).
	big, err := PingPongHost(1<<20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if big < us/10 {
		t.Errorf("1 MiB (%v µs) implausibly faster than 4 KiB (%v µs)", big, us)
	}
}

func TestPingPongHostValidation(t *testing.T) {
	if _, err := PingPongHost(-1, 10); err == nil {
		t.Error("want error for negative size")
	}
	if _, err := PingPongHost(10, 0); err == nil {
		t.Error("want error for zero iters")
	}
}

func TestStreamHostSweep(t *testing.T) {
	pts, err := StreamHostSweep(Copy, 2, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Threads != 1 || pts[1].Threads != 2 {
		t.Fatalf("sweep shape wrong: %+v", pts)
	}
	for _, p := range pts {
		if p.BandwidthMBps < 100 {
			t.Errorf("implausible host bandwidth %v", p.BandwidthMBps)
		}
	}
	if _, err := StreamHostSweep(Copy, 0, 100, 1); err == nil {
		t.Error("want error for zero maxThreads")
	}
}
