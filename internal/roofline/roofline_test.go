package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRidgePoint(t *testing.T) {
	m := Machine{PeakGFLOPS: 1000, PeakBandwidthGBps: 100}
	if got := m.RidgePoint(); got != 10 {
		t.Errorf("RidgePoint = %v, want 10", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Machine{PeakGFLOPS: 1, PeakBandwidthGBps: 1}).Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	for _, m := range []Machine{{0, 1}, {1, 0}, {-1, 1}} {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid machine %+v accepted", m)
		}
	}
}

func TestIntensity(t *testing.T) {
	k := Kernel{FlopsPerPoint: 250, BytesPerPoint: 500}
	if got := k.Intensity(); got != 0.5 {
		t.Errorf("Intensity = %v, want 0.5", got)
	}
	free := Kernel{FlopsPerPoint: 10, BytesPerPoint: 0}
	if !math.IsInf(free.Intensity(), 1) {
		t.Error("zero-byte kernel should have infinite intensity")
	}
}

func TestAnalyzeBandwidthBoundLBM(t *testing.T) {
	// A Broadwell-class node: LBM must land bandwidth-bound, the paper's
	// central premise.
	m := Machine{PeakGFLOPS: 1200, PeakBandwidthGBps: 60}
	k := D3Q19BGK(456)
	a, err := Analyze(k, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound != BandwidthBound {
		t.Fatalf("LBM analyzed as %v, want bandwidth-bound", a.Bound)
	}
	// Attainable = bw * intensity = 60 GB/s * (250/456 flop/B).
	want := 60 * 250 / 456.0
	if math.Abs(a.AttainableGFLOPS-want) > 1e-9 {
		t.Errorf("attainable %v GFLOP/s, want %v", a.AttainableGFLOPS, want)
	}
	// Points/s = bytes-limited rate.
	wantPPS := 60e9 / 456
	if math.Abs(a.PointsPerSecond-wantPPS)/wantPPS > 1e-12 {
		t.Errorf("points/s = %v, want %v", a.PointsPerSecond, wantPPS)
	}
	if got := a.SecondsPerNPoints(wantPPS); math.Abs(got-1) > 1e-12 {
		t.Errorf("SecondsPerNPoints inconsistent: %v", got)
	}
}

func TestAnalyzeComputeBound(t *testing.T) {
	// A dense compute kernel on a bandwidth-rich machine.
	m := Machine{PeakGFLOPS: 100, PeakBandwidthGBps: 1000}
	k := Kernel{Name: "dense", FlopsPerPoint: 10000, BytesPerPoint: 8}
	a, err := Analyze(k, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound != ComputeBound {
		t.Fatalf("dense kernel analyzed as %v", a.Bound)
	}
	if a.AttainableGFLOPS != 100 {
		t.Errorf("attainable %v, want the 100 GFLOP/s ceiling", a.AttainableGFLOPS)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(D3Q19BGK(456), Machine{}); err == nil {
		t.Error("want error for zero machine")
	}
	if _, err := Analyze(Kernel{}, Machine{PeakGFLOPS: 1, PeakBandwidthGBps: 1}); err == nil {
		t.Error("want error for zero kernel")
	}
}

func TestAttainableNeverExceedsCeilings(t *testing.T) {
	f := func(flops, bytes, peakF, peakB float64) bool {
		k := Kernel{FlopsPerPoint: 1 + math.Abs(flops), BytesPerPoint: 1 + math.Abs(bytes)}
		m := Machine{PeakGFLOPS: 1 + math.Abs(peakF), PeakBandwidthGBps: 1 + math.Abs(peakB)}
		if k.FlopsPerPoint > 1e12 || k.BytesPerPoint > 1e12 || m.PeakGFLOPS > 1e12 || m.PeakBandwidthGBps > 1e12 {
			return true
		}
		a, err := Analyze(k, m)
		if err != nil {
			return false
		}
		if a.AttainableGFLOPS > m.PeakGFLOPS*(1+1e-12) {
			return false
		}
		// Implied bandwidth use never exceeds the memory ceiling.
		impliedGBps := a.PointsPerSecond * k.BytesPerPoint / 1e9
		return impliedGBps <= m.PeakBandwidthGBps*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlopTimeTinyForLBM(t *testing.T) {
	// The paper drops the FLOP term for CPU LBM; at realistic ceilings the
	// flop time must be well under the memory time for the same points.
	m := Machine{PeakGFLOPS: 1200, PeakBandwidthGBps: 60}
	k := D3Q19BGK(456)
	const n = 1e6
	flopT := FlopTimeS(k, m, n)
	memT := n * k.BytesPerPoint / (m.PeakBandwidthGBps * 1e9)
	if flopT >= memT/2 {
		t.Errorf("flop time %v not well below memory time %v", flopT, memT)
	}
}

func TestBoundString(t *testing.T) {
	if BandwidthBound.String() != "bandwidth-bound" || ComputeBound.String() != "compute-bound" {
		t.Error("bound strings wrong")
	}
}
