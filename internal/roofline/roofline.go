// Package roofline implements the roofline performance model the paper's
// Discussion proposes folding into the framework: a kernel's attainable
// throughput is bounded by the lesser of peak floating-point rate and
// peak memory bandwidth times arithmetic intensity. The paper uses it two
// ways — as an additional runtime term candidate for the performance
// model, and as "a realistic measure of potential performance" so users
// do not chase a single hardware limit's roofline that cannot actually be
// met.
package roofline

import (
	"fmt"
	"math"
)

// Machine is the two-ceiling roofline of one compute device.
type Machine struct {
	PeakGFLOPS        float64 // floating-point ceiling, GFLOP/s
	PeakBandwidthGBps float64 // memory ceiling, GB/s
}

// Validate checks the ceilings are usable.
func (m Machine) Validate() error {
	if m.PeakGFLOPS <= 0 || m.PeakBandwidthGBps <= 0 {
		return fmt.Errorf("roofline: non-positive ceilings %+v", m)
	}
	return nil
}

// RidgePoint returns the arithmetic intensity (FLOP/byte) at which the
// machine transitions from bandwidth-bound to compute-bound.
func (m Machine) RidgePoint() float64 {
	return m.PeakGFLOPS / m.PeakBandwidthGBps
}

// Kernel characterizes one computational kernel by its per-point work.
type Kernel struct {
	Name          string
	FlopsPerPoint float64 // floating-point operations per fluid-point update
	BytesPerPoint float64 // memory traffic per fluid-point update
}

// Intensity returns the kernel's arithmetic intensity in FLOP/byte.
func (k Kernel) Intensity() float64 {
	if k.BytesPerPoint == 0 {
		return math.Inf(1)
	}
	return k.FlopsPerPoint / k.BytesPerPoint
}

// D3Q19BGK returns the roofline kernel for a D3Q19 BGK fluid-point
// update: roughly 250 floating-point operations (moments, equilibrium,
// relaxation over 19 directions) against the supplied effective byte
// count from the Eq. 9 accounting.
func D3Q19BGK(bytesPerPoint float64) Kernel {
	return Kernel{Name: "D3Q19-BGK", FlopsPerPoint: 250, BytesPerPoint: bytesPerPoint}
}

// Bound identifies which ceiling limits a kernel.
type Bound int

// Roofline regimes.
const (
	BandwidthBound Bound = iota
	ComputeBound
)

// String names the bound.
func (b Bound) String() string {
	if b == BandwidthBound {
		return "bandwidth-bound"
	}
	return "compute-bound"
}

// Analysis is the roofline verdict for one kernel on one machine.
type Analysis struct {
	Kernel            Kernel
	Machine           Machine
	Bound             Bound
	AttainableGFLOPS  float64 // min(peak, bw * intensity)
	PointsPerSecond   float64 // attainable fluid-point updates per second
	SecondsPerNPoints func(n float64) float64
}

// Analyze places the kernel on the machine's roofline.
func Analyze(k Kernel, m Machine) (Analysis, error) {
	if err := m.Validate(); err != nil {
		return Analysis{}, err
	}
	if k.FlopsPerPoint <= 0 || k.BytesPerPoint <= 0 {
		return Analysis{}, fmt.Errorf("roofline: kernel %q has non-positive work", k.Name)
	}
	a := Analysis{Kernel: k, Machine: m}
	bwLimited := m.PeakBandwidthGBps * k.Intensity() // GFLOP/s if bandwidth-fed
	if bwLimited < m.PeakGFLOPS {
		a.Bound = BandwidthBound
		a.AttainableGFLOPS = bwLimited
	} else {
		a.Bound = ComputeBound
		a.AttainableGFLOPS = m.PeakGFLOPS
	}
	a.PointsPerSecond = a.AttainableGFLOPS * 1e9 / k.FlopsPerPoint
	pps := a.PointsPerSecond
	a.SecondsPerNPoints = func(n float64) float64 { return n / pps }
	return a, nil
}

// FlopTimeS returns the pure compute-ceiling time for updating n points —
// the "time for floating point operations" term the paper's Discussion
// lists among the costs its bandwidth-only model ignores. For LBM on
// general-purpose CPUs this is far below the memory time, which is why
// the paper could drop it; the term selector in internal/perfmodel
// verifies that empirically.
func FlopTimeS(k Kernel, m Machine, n float64) float64 {
	return n * k.FlopsPerPoint / (m.PeakGFLOPS * 1e9)
}
