package cloud

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/machine"
)

// TestRetryAggregationConserves is a property-style check over many
// seeds: however many forced preemptions a job suffers, the aggregated
// result must conserve steps, wall-clock compute time, and dollars
// against the provider's ledger — no work lost, none double-counted.
func TestRetryAggregationConserves(t *testing.T) {
	w := testWorkload(t, 16)
	for seed := int64(1); seed <= 20; seed++ {
		p := NewProvider(machine.Catalog(), seed)
		p.PreemptionPerNodeHour = 2e5 // preempts often, completes eventually
		c := Campaign{Provider: p, BudgetUSD: 100, MaxRetries: 100}
		if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := c.Results[0]

		var ledgerUSD, ledgerSeconds float64
		var ledgerSteps, totalSteps int
		for _, e := range p.Ledger() {
			ledgerUSD += e.USD
			ledgerSeconds += e.Seconds
			var done, of int
			if _, err := fmt.Sscanf(e.Description, "job %q: %d/%d steps", new(string), &done, &of); err != nil {
				t.Fatalf("seed %d: unparseable ledger description %q: %v", seed, e.Description, err)
			}
			ledgerSteps += done
			totalSteps += of
		}
		if res.StepsDone != ledgerSteps {
			t.Errorf("seed %d: aggregated %d steps, ledger bills %d", seed, res.StepsDone, ledgerSteps)
		}
		if math.Abs(res.USD-ledgerUSD) > 1e-9 {
			t.Errorf("seed %d: aggregated $%v, ledger bills $%v", seed, res.USD, ledgerUSD)
		}
		if math.Abs(res.Result.Seconds-ledgerSeconds) > 1e-9 {
			t.Errorf("seed %d: aggregated %vs compute, ledger bills %vs", seed, res.Result.Seconds, ledgerSeconds)
		}
		if res.StepsDone > 400 {
			t.Errorf("seed %d: job overshot its step count: %d", seed, res.StepsDone)
		}
		if !res.Preempted && res.StepsDone != 400 {
			t.Errorf("seed %d: unpreempted final state with %d/400 steps", seed, res.StepsDone)
		}
		// Attempts bill disjoint work: the sum of per-attempt step targets
		// must never exceed the original plus the re-billed remainders.
		if attempts := len(p.Ledger()); attempts > 1 && totalSteps <= 400 {
			t.Errorf("seed %d: %d attempts but targets sum to %d", seed, attempts, totalSteps)
		}
	}
}

func TestSpotDiscountApplied(t *testing.T) {
	// With the hazard disabled, a spot job completes and is billed at the
	// discounted rate for its own metered node-time.
	w := testWorkload(t, 16)
	p := newProvider()
	p.PreemptionPerNodeHour = 0
	sp, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 300, Spot: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Preempted || sp.Aborted {
		t.Fatalf("hazard-free spot job did not complete: %+v", sp)
	}
	sys, err := p.System("CSP-2 Small")
	if err != nil {
		t.Fatal(err)
	}
	want := sys.JobCost(16, sp.Result.Seconds) * SpotDiscount
	if math.Abs(sp.USD-want) > 1e-15 {
		t.Errorf("spot bill %v, want %v", sp.USD, want)
	}
}

func TestSpotPreemptionFires(t *testing.T) {
	p := newProvider()
	p.PreemptionPerNodeHour = 1e7 // essentially certain per slice
	w := testWorkload(t, 16)
	res, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Preempted || !res.Aborted {
		t.Fatalf("job survived a certain hazard: %+v", res)
	}
	if res.StepsDone >= 400 {
		t.Error("preempted job claims completion")
	}
	if res.AbortReason == "" {
		t.Error("missing abort reason")
	}
}

func TestOnDemandNeverPreempted(t *testing.T) {
	p := newProvider()
	p.PreemptionPerNodeHour = 1e7
	w := testWorkload(t, 16)
	res, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preempted {
		t.Error("on-demand job was preempted")
	}
}

func TestCampaignRetriesPreemptedJob(t *testing.T) {
	p := newProvider()
	// Moderate hazard: preempts sometimes, so retries make progress.
	p.PreemptionPerNodeHour = 2e5
	w := testWorkload(t, 16)
	c := Campaign{Provider: p, BudgetUSD: 100, MaxRetries: 50}
	if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 1 {
		t.Fatalf("campaign results: %d", len(c.Results))
	}
	res := c.Results[0]
	if res.StepsDone != 400 {
		t.Errorf("retries did not finish the job: %d/400 steps (%+v)", res.StepsDone, res)
	}
	if res.Preempted {
		t.Error("final state still preempted after retries")
	}
}

func TestCampaignRetryRespectsMax(t *testing.T) {
	p := newProvider()
	p.PreemptionPerNodeHour = 1e8 // always preempted
	w := testWorkload(t, 16)
	c := Campaign{Provider: p, BudgetUSD: 100, MaxRetries: 3}
	if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	res := c.Results[0]
	if !res.Preempted {
		t.Error("job should end preempted when hazard is certain")
	}
	if res.StepsDone >= 400 {
		t.Error("impossible completion")
	}
	// 1 initial + 3 retries = 4 billing entries.
	if got := len(p.Ledger()); got != 4 {
		t.Errorf("ledger has %d entries, want 4", got)
	}
}

// TestResumeSpecNoCompounding locks the per-step rate invariant: chained
// resumes must rescale the time guard from the previous attempt's spec at
// the original seconds-per-step rate, never compounding a scale factor.
func TestResumeSpecNoCompounding(t *testing.T) {
	spec := JobSpec{Steps: 1000, PredictedSeconds: 500, Tolerance: 0.1}
	perStep := spec.PredictedSeconds / float64(spec.Steps)

	// First preemption after 300 steps, second after another 250.
	r1 := resumeSpec(spec, 300)
	if r1.Steps != 700 {
		t.Fatalf("first resume steps = %d, want 700", r1.Steps)
	}
	if math.Abs(r1.PredictedSeconds-perStep*700) > 1e-12 {
		t.Errorf("first resume predicted %v, want %v", r1.PredictedSeconds, perStep*700)
	}
	r2 := resumeSpec(r1, 250)
	if r2.Steps != 450 {
		t.Fatalf("second resume steps = %d, want 450", r2.Steps)
	}
	if math.Abs(r2.PredictedSeconds-perStep*450) > 1e-12 {
		t.Errorf("second resume predicted %v, want %v (per-step rate compounded)",
			r2.PredictedSeconds, perStep*450)
	}
	// A job with no prediction stays unguarded across resumes.
	bare := resumeSpec(JobSpec{Steps: 100}, 40)
	if bare.PredictedSeconds != 0 {
		t.Errorf("unguarded resume grew a prediction: %v", bare.PredictedSeconds)
	}
}

// TestRetryBudgetEnforced forces preemptions against a budget that cannot
// cover the full retry sequence: the campaign must stop resuming once the
// budget is gone, keep the partial result, and never overspend by more
// than one metered slice past the cap.
func TestRetryBudgetEnforced(t *testing.T) {
	w := testWorkload(t, 16)
	probe := newProvider()
	ref, err := probe.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 400})
	if err != nil {
		t.Fatal(err)
	}

	p := newProvider()
	p.PreemptionPerNodeHour = 1e8 // every attempt is preempted
	budget := ref.USD * SpotDiscount / 2
	c := Campaign{Provider: p, BudgetUSD: budget, MaxRetries: 1000}
	if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 1 {
		t.Fatalf("partial result dropped: %d results", len(c.Results))
	}
	// A started attempt may overshoot the budget by at most one slice of
	// one attempt; with 1000 retries allowed, unchecked resumes would
	// spend many multiples of the budget.
	if p.TotalSpend() > budget+ref.USD {
		t.Errorf("spend $%v blew past budget $%v", p.TotalSpend(), budget)
	}
	if got := len(p.Ledger()); got >= 1000 {
		t.Errorf("budget did not stop the retry sequence: %d attempts", got)
	}
}

// TestRunWithRetriesSurfacesBudgetError exercises the typed error directly.
func TestRunWithRetriesSurfacesBudgetError(t *testing.T) {
	w := testWorkload(t, 16)
	p := newProvider()
	p.PreemptionPerNodeHour = 1e8
	c := Campaign{Provider: p, BudgetUSD: 1e-9, MaxRetries: 10}
	res, err := c.runWithRetries(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}, nil)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.StepsDone <= 0 {
		t.Error("partial result lost with the budget error")
	}
}

func TestSpotCheaperDespiteRetries(t *testing.T) {
	// The economics that make spot attractive: even paying for preempted
	// partial runs, the discounted rate usually wins.
	w := testWorkload(t, 16)

	od := newProvider()
	cOD := Campaign{Provider: od, BudgetUSD: 100}
	if err := cOD.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400}}); err != nil {
		t.Fatal(err)
	}

	sp := newProvider()
	sp.PreemptionPerNodeHour = 1e5 // occasional preemption
	cSP := Campaign{Provider: sp, BudgetUSD: 100, MaxRetries: 50}
	if err := cSP.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	if cSP.Results[0].StepsDone != 400 {
		t.Fatalf("spot campaign incomplete: %d steps", cSP.Results[0].StepsDone)
	}
	if sp.TotalSpend() >= od.TotalSpend() {
		t.Errorf("spot ($%v) not cheaper than on-demand ($%v)", sp.TotalSpend(), od.TotalSpend())
	}
}
