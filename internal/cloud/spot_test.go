package cloud

import (
	"math"
	"testing"
)

func TestSpotDiscountApplied(t *testing.T) {
	// With the hazard disabled, a spot job completes and is billed at the
	// discounted rate for its own metered node-time.
	w := testWorkload(t, 16)
	p := newProvider()
	p.PreemptionPerNodeHour = 0
	sp, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 300, Spot: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Preempted || sp.Aborted {
		t.Fatalf("hazard-free spot job did not complete: %+v", sp)
	}
	sys, err := p.System("CSP-2 Small")
	if err != nil {
		t.Fatal(err)
	}
	want := sys.JobCost(16, sp.Result.Seconds) * SpotDiscount
	if math.Abs(sp.USD-want) > 1e-15 {
		t.Errorf("spot bill %v, want %v", sp.USD, want)
	}
}

func TestSpotPreemptionFires(t *testing.T) {
	p := newProvider()
	p.PreemptionPerNodeHour = 1e7 // essentially certain per slice
	w := testWorkload(t, 16)
	res, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Preempted || !res.Aborted {
		t.Fatalf("job survived a certain hazard: %+v", res)
	}
	if res.StepsDone >= 400 {
		t.Error("preempted job claims completion")
	}
	if res.AbortReason == "" {
		t.Error("missing abort reason")
	}
}

func TestOnDemandNeverPreempted(t *testing.T) {
	p := newProvider()
	p.PreemptionPerNodeHour = 1e7
	w := testWorkload(t, 16)
	res, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preempted {
		t.Error("on-demand job was preempted")
	}
}

func TestCampaignRetriesPreemptedJob(t *testing.T) {
	p := newProvider()
	// Moderate hazard: preempts sometimes, so retries make progress.
	p.PreemptionPerNodeHour = 2e5
	w := testWorkload(t, 16)
	c := Campaign{Provider: p, BudgetUSD: 100, MaxRetries: 50}
	if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 1 {
		t.Fatalf("campaign results: %d", len(c.Results))
	}
	res := c.Results[0]
	if res.StepsDone != 400 {
		t.Errorf("retries did not finish the job: %d/400 steps (%+v)", res.StepsDone, res)
	}
	if res.Preempted {
		t.Error("final state still preempted after retries")
	}
}

func TestCampaignRetryRespectsMax(t *testing.T) {
	p := newProvider()
	p.PreemptionPerNodeHour = 1e8 // always preempted
	w := testWorkload(t, 16)
	c := Campaign{Provider: p, BudgetUSD: 100, MaxRetries: 3}
	if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	res := c.Results[0]
	if !res.Preempted {
		t.Error("job should end preempted when hazard is certain")
	}
	if res.StepsDone >= 400 {
		t.Error("impossible completion")
	}
	// 1 initial + 3 retries = 4 billing entries.
	if got := len(p.Ledger()); got != 4 {
		t.Errorf("ledger has %d entries, want 4", got)
	}
}

func TestSpotCheaperDespiteRetries(t *testing.T) {
	// The economics that make spot attractive: even paying for preempted
	// partial runs, the discounted rate usually wins.
	w := testWorkload(t, 16)

	od := newProvider()
	cOD := Campaign{Provider: od, BudgetUSD: 100}
	if err := cOD.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400}}); err != nil {
		t.Fatal(err)
	}

	sp := newProvider()
	sp.PreemptionPerNodeHour = 1e5 // occasional preemption
	cSP := Campaign{Provider: sp, BudgetUSD: 100, MaxRetries: 50}
	if err := cSP.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 400, Spot: true}}); err != nil {
		t.Fatal(err)
	}
	if cSP.Results[0].StepsDone != 400 {
		t.Fatalf("spot campaign incomplete: %d steps", cSP.Results[0].StepsDone)
	}
	if sp.TotalSpend() >= od.TotalSpend() {
		t.Errorf("spot ($%v) not cheaper than on-demand ($%v)", sp.TotalSpend(), od.TotalSpend())
	}
}
