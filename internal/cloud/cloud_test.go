package cloud

import (
	"math"
	"strings"
	"testing"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

func testWorkload(t *testing.T, ranks int) simcloud.Workload {
	t.Helper()
	dom, err := geometry.Cylinder(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := decomp.RCB(s, ranks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	return simcloud.FromPartition("cyl", s.N(), p)
}

func newProvider() *Provider { return NewProvider(machine.Catalog(), 42) }

func TestProviderLookup(t *testing.T) {
	p := newProvider()
	if _, err := p.System("CSP-2 EC"); err != nil {
		t.Errorf("known system rejected: %v", err)
	}
	if _, err := p.System("AWS"); err == nil {
		t.Error("want error for unknown system")
	}
}

func TestAdvance(t *testing.T) {
	p := newProvider()
	if err := p.Advance(21600); err != nil {
		t.Fatal(err)
	}
	if p.Clock() != 21600 {
		t.Errorf("clock = %v, want 21600", p.Clock())
	}
	if err := p.Advance(-1); err == nil {
		t.Error("want error for negative advance")
	}
}

func TestRunJobBillsActualUsage(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	res, err := p.RunJob(JobSpec{Workload: w, System: "CSP-1", Steps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatalf("unguarded job aborted: %s", res.AbortReason)
	}
	if res.StepsDone != 500 {
		t.Errorf("StepsDone = %d, want 500", res.StepsDone)
	}
	sys, _ := p.System("CSP-1")
	want := sys.JobCost(16, res.Result.Seconds)
	if math.Abs(res.USD-want) > 1e-9 {
		t.Errorf("billed %v, want %v", res.USD, want)
	}
	if p.TotalSpend() != res.USD {
		t.Errorf("provider spend %v != job bill %v", p.TotalSpend(), res.USD)
	}
	if len(p.Ledger()) != 1 {
		t.Fatalf("ledger has %d entries, want 1", len(p.Ledger()))
	}
	if res.WallSeconds <= res.Result.Seconds {
		t.Error("wall time must include provisioning delay")
	}
}

func TestRunJobValidation(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	if _, err := p.RunJob(JobSpec{Workload: w, System: "nope", Steps: 10}); err == nil {
		t.Error("want error for unknown system")
	}
	if _, err := p.RunJob(JobSpec{Workload: w, System: "CSP-1", Steps: 0}); err == nil {
		t.Error("want error for zero steps")
	}
	if _, err := p.RunJob(JobSpec{System: "CSP-1", Steps: 10}); err == nil {
		t.Error("want error for empty workload")
	}
	big := testWorkload(t, 64) // CSP-1 has 48 cores
	if _, err := p.RunJob(JobSpec{Workload: big, System: "CSP-1", Steps: 10}); err == nil {
		t.Error("want error for oversubscribed system")
	}
}

func TestTimeGuardTripsOnBadPrediction(t *testing.T) {
	// Predict a tenth of the plausible runtime: the guard must hard-stop
	// the job near the predicted envelope instead of running to completion.
	p := newProvider()
	w := testWorkload(t, 16)
	probe, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	predicted := probe.Result.Seconds / 10

	res, err := p.RunJob(JobSpec{
		Workload: w, System: "CSP-2 Small", Steps: 1000,
		PredictedSeconds: predicted, Tolerance: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("guard did not trip on a 10x underprediction")
	}
	if !strings.Contains(res.AbortReason, "time guard") {
		t.Errorf("abort reason %q not the time guard", res.AbortReason)
	}
	if res.StepsDone >= 1000 {
		t.Error("aborted job claims full completion")
	}
	// The overshoot past the guard is bounded by one metering slice
	// (1/20th of the job), since the guard polls at slice boundaries.
	limit := predicted * 1.10
	slice := probe.Result.Seconds / 20
	if res.Result.Seconds > limit+1.5*slice {
		t.Errorf("guard let job run to %v, limit %v + slice %v", res.Result.Seconds, limit, slice)
	}
}

func TestTimeGuardPassesGoodPrediction(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	probe, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 400})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunJob(JobSpec{
		Workload: w, System: "CSP-2 Small", Steps: 400,
		PredictedSeconds: probe.Result.Seconds, Tolerance: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Errorf("guard tripped on an accurate prediction: %s", res.AbortReason)
	}
}

func TestCostGuard(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	probe, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cap := probe.USD / 5
	res, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 1000, MaxUSD: cap})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !strings.Contains(res.AbortReason, "cost guard") {
		t.Fatalf("cost guard did not trip: %+v", res)
	}
	if res.USD > cap*1.3 {
		t.Errorf("billed %v, far above cap %v", res.USD, cap)
	}
}

func TestCampaignBudget(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	probe, err := p.RunJob(JobSpec{Workload: w, System: "CSP-2 Small", Steps: 300})
	if err != nil {
		t.Fatal(err)
	}
	perJob := probe.USD

	fresh := newProvider()
	c := Campaign{Provider: fresh, BudgetUSD: perJob * 2.5}
	specs := make([]JobSpec, 5)
	for i := range specs {
		wi := w
		wi.Name = string(rune('a' + i))
		specs[i] = JobSpec{Workload: wi, System: "CSP-2 Small", Steps: 300}
	}
	if err := c.Run(specs); err != nil {
		t.Fatal(err)
	}
	if len(c.Results)+len(c.Skipped) != 5 {
		t.Fatalf("results %d + skipped %d != 5", len(c.Results), len(c.Skipped))
	}
	if len(c.Skipped) == 0 {
		t.Error("budget should have excluded some jobs")
	}
	// The campaign may overshoot by at most one job (started within
	// budget), never more.
	if fresh.TotalSpend() > c.BudgetUSD+perJob*1.5 {
		t.Errorf("spend %v blew past budget %v", fresh.TotalSpend(), c.BudgetUSD)
	}
}

func TestCampaignSkipsGuardedJobsOverBudget(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	c := Campaign{Provider: p, BudgetUSD: 0.0001}
	if err := c.Run([]JobSpec{{Workload: w, System: "CSP-2 Small", Steps: 100, MaxUSD: 10}}); err != nil {
		t.Fatal(err)
	}
	if len(c.Skipped) != 1 || len(c.Results) != 0 {
		t.Errorf("guarded job not skipped: %+v", c)
	}
}

func TestJobsAdvanceClock(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	before := p.Clock()
	if _, err := p.RunJob(JobSpec{Workload: w, System: "CSP-1", Steps: 100}); err != nil {
		t.Fatal(err)
	}
	if p.Clock() <= before {
		t.Error("job did not advance simulated time")
	}
}

func TestRenderLedger(t *testing.T) {
	p := newProvider()
	w := testWorkload(t, 16)
	if _, err := p.RunJob(JobSpec{Workload: w, System: "CSP-1", Steps: 100}); err != nil {
		t.Fatal(err)
	}
	out := p.RenderLedger()
	for _, want := range []string{"CSP-1", "total: $", "1 events", "cyl"} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger missing %q:\n%s", want, out)
		}
	}
}
