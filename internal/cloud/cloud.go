// Package cloud simulates a cloud service provider's control plane: node
// provisioning with realistic delays, pay-as-you-go metering, and a
// performance-model-driven budget guard that hard-stops jobs running
// beyond their predicted time or dollar envelope — the paper's mechanism
// for "protection against inadvertent cost overruns". Simulated epoch time
// lets campaigns span days (the 7-day noise study) in microseconds of real
// time.
package cloud

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simcloud"
	"repro/internal/units"
)

// ErrBudgetExhausted reports that a campaign ran out of budget while a
// preempted job still had steps to resume. The partial, aggregated result
// up to that point is still returned alongside it.
var ErrBudgetExhausted = errors.New("cloud: campaign budget exhausted")

// Provider is a simulated CSP offering the systems of a catalog.
type Provider struct {
	systems map[string]*machine.System
	clock   float64 // simulated epoch seconds
	rng     *rand.Rand
	nextID  int
	spend   float64
	ledger  []LedgerEntry

	// PreemptionPerNodeHour is the spot-reclaim hazard rate. It defaults
	// to SpotPreemptionPerHour; tests and what-if studies may raise it to
	// exercise preemption on short simulated jobs.
	PreemptionPerNodeHour float64
}

// LedgerEntry records one billing event.
type LedgerEntry struct {
	AllocationID int
	System       string
	Nodes        int
	Seconds      float64
	USD          float64
	Description  string
}

// NewProvider creates a provider over the given systems. seed drives all
// noise in provisioning and job execution, making campaigns reproducible.
func NewProvider(systems []*machine.System, seed int64) *Provider {
	p := &Provider{
		systems:               make(map[string]*machine.System, len(systems)),
		rng:                   rand.New(rand.NewSource(seed)),
		PreemptionPerNodeHour: SpotPreemptionPerHour,
	}
	for _, s := range systems {
		p.systems[s.Abbrev] = s
	}
	return p
}

// Clock returns the simulated epoch time in seconds.
func (p *Provider) Clock() float64 { return p.clock }

// Advance moves simulated time forward (e.g. the 6-hour intervals of the
// noise study). Negative durations are rejected.
func (p *Provider) Advance(seconds float64) error {
	if seconds < 0 {
		return fmt.Errorf("cloud: cannot advance time by %g", seconds)
	}
	p.clock += seconds
	return nil
}

// System looks up a catalog system by abbreviation.
func (p *Provider) System(abbrev string) (*machine.System, error) {
	s, ok := p.systems[abbrev]
	if !ok {
		return nil, fmt.Errorf("cloud: provider does not offer %q", abbrev)
	}
	return s, nil
}

// TotalSpend returns the accumulated bill in USD.
func (p *Provider) TotalSpend() float64 { return p.spend }

// Ledger returns a copy of all billing events.
func (p *Provider) Ledger() []LedgerEntry {
	return append([]LedgerEntry(nil), p.ledger...)
}

// RenderLedger formats the billing history as a text statement.
func (p *Provider) RenderLedger() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-14s %6s %12s %12s  %s\n",
		"alloc", "system", "nodes", "seconds", "USD", "description")
	for _, e := range p.ledger {
		fmt.Fprintf(&b, "%-6d %-14s %6d %12.4f %12.4f  %s\n",
			e.AllocationID, e.System, e.Nodes, e.Seconds, e.USD, e.Description)
	}
	fmt.Fprintf(&b, "total: $%.4f across %d events\n", p.spend, len(p.ledger))
	return b.String()
}

// charge meters one billing event.
func (p *Provider) charge(e LedgerEntry) {
	p.spend += e.USD
	p.ledger = append(p.ledger, e)
}

// JobSpec describes one simulation job plus its model-driven guard rails.
type JobSpec struct {
	Workload simcloud.Workload
	System   string
	Steps    int

	// PredictedSeconds is the performance model's runtime estimate. When
	// positive, the guard aborts the job once elapsed compute time exceeds
	// PredictedSeconds*(1+Tolerance) — the paper's "10% tolerance on the
	// prediction ... hard stop".
	PredictedSeconds float64
	Tolerance        float64

	// MaxUSD, when positive, hard-stops the job when metered cost reaches
	// it regardless of the time guard.
	MaxUSD float64

	// Spot requests preemptible capacity: billed at SpotDiscount of the
	// on-demand rate, but the provider may reclaim the nodes mid-run
	// (the job ends preempted with partial steps; a campaign configured
	// to retry resumes the remainder, modeling checkpoint/restart).
	Spot bool
}

// Spot market constants: the discount relative to on-demand pricing and
// the reclaim hazard, expressed as expected preemptions per node-hour.
// Both are synthetic but proportioned like 2022-era spot markets.
const (
	SpotDiscount          = 0.30
	SpotPreemptionPerHour = 1.5
)

// JobResult reports a completed or aborted job.
type JobResult struct {
	simcloud.Result
	Allocation   int
	Aborted      bool
	Preempted    bool // the spot market reclaimed the nodes
	AbortReason  string
	StepsDone    int
	USD          float64 // metered cost of this job (provisioned node time)
	WallSeconds  float64 // compute time plus provisioning delay
	ProvisionSec float64
}

// guardChunks is how many slices a guarded job is metered in; the guard
// can only trip at a slice boundary, like a scheduler polling a job.
const guardChunks = 20

// RunJob provisions nodes, executes the workload in metered slices with
// the budget guard active, releases the nodes, and bills actual usage.
func (p *Provider) RunJob(spec JobSpec) (JobResult, error) {
	sys, err := p.System(spec.System)
	if err != nil {
		return JobResult{}, err
	}
	if spec.Steps <= 0 {
		return JobResult{}, fmt.Errorf("cloud: job needs positive steps, got %d", spec.Steps)
	}
	ranks := len(spec.Workload.Tasks)
	if ranks == 0 {
		return JobResult{}, fmt.Errorf("cloud: job workload is empty")
	}
	if ranks > sys.MaxRanks() {
		return JobResult{}, fmt.Errorf("cloud: %d ranks exceed %s capacity %d", ranks, spec.System, sys.MaxRanks())
	}

	// Provisioning: jittered delay, then the meter starts.
	delay := sys.ProvisionDelayS * (0.8 + 0.4*p.rng.Float64())
	p.clock += delay
	p.nextID++
	res := JobResult{Allocation: p.nextID, ProvisionSec: delay}

	timeLimit := 0.0
	if spec.PredictedSeconds > 0 {
		timeLimit = spec.PredictedSeconds * (1 + spec.Tolerance)
	}

	rate := 1.0
	if spec.Spot {
		rate = SpotDiscount
	}
	chunk := (spec.Steps + guardChunks - 1) / guardChunks
	var eff simcloud.Result
	for done := 0; done < spec.Steps; {
		n := chunk
		if done+n > spec.Steps {
			n = spec.Steps - done
		}
		r, err := simcloud.Run(spec.Workload, sys, n, p.rng)
		if err != nil {
			return JobResult{}, err
		}
		eff = r
		done += n
		res.StepsDone = done
		res.WallSeconds += r.Seconds
		res.USD = sys.JobCost(ranks, res.WallSeconds) * rate
		if spec.Spot {
			// Reclaim hazard over this slice's node-time.
			nodeHours := float64(sys.Nodes(ranks)) * units.SecondsToHours(r.Seconds)
			if p.rng.Float64() < 1-math.Exp(-p.PreemptionPerNodeHour*nodeHours) {
				res.Aborted = true
				res.Preempted = true
				res.AbortReason = "spot capacity reclaimed by provider"
				break
			}
		}
		if done >= spec.Steps {
			break // finished: the guard only interrupts remaining work
		}
		if timeLimit > 0 && res.WallSeconds > timeLimit {
			res.Aborted = true
			res.AbortReason = fmt.Sprintf("time guard: %.1fs exceeds predicted %.1fs +%.0f%%",
				res.WallSeconds, spec.PredictedSeconds, spec.Tolerance*100)
			break
		}
		if spec.MaxUSD > 0 && res.USD >= spec.MaxUSD {
			res.Aborted = true
			res.AbortReason = fmt.Sprintf("cost guard: $%.2f reached cap $%.2f", res.USD, spec.MaxUSD)
			break
		}
	}
	res.Result = eff
	res.Result.Steps = res.StepsDone
	res.Result.Seconds = res.WallSeconds
	if res.WallSeconds > 0 {
		res.Result.MFLUPS = float64(spec.Workload.Points) * float64(res.StepsDone) / res.WallSeconds / 1e6
	}
	res.Result.CostUSD = res.USD
	p.clock += res.WallSeconds
	res.WallSeconds += delay

	p.charge(LedgerEntry{
		AllocationID: res.Allocation,
		System:       spec.System,
		Nodes:        sys.Nodes(ranks),
		Seconds:      res.Result.Seconds,
		USD:          res.USD,
		Description:  fmt.Sprintf("job %q: %d/%d steps", spec.Workload.Name, res.StepsDone, spec.Steps),
	})
	return res, nil
}

// Campaign runs a sequence of jobs under a total dollar budget, skipping
// jobs once the budget is exhausted.
type Campaign struct {
	Provider  *Provider
	BudgetUSD float64

	// MaxRetries resumes spot-preempted jobs from their completed step
	// count (checkpoint/restart semantics) up to this many times each.
	MaxRetries int

	// Trace, Metrics and Root optionally attach observability: each job
	// gets a span on the provider's simulated clock with one child per
	// attempt, and preemptions/retries count into the registry. Nil
	// values disable instrumentation.
	Trace   *obs.Tracer
	Metrics *obs.Registry
	Root    *obs.Span

	Results []JobResult
	Skipped []string // names of jobs not started for lack of budget
}

// Run executes the specs in order. A job is started only if the remaining
// budget covers its worst-case guard cost (its MaxUSD if set, otherwise
// an unguarded job is always started). Returns the first hard error.
func (c *Campaign) Run(specs []JobSpec) error {
	for _, spec := range specs {
		remaining := c.BudgetUSD - c.Provider.TotalSpend()
		if spec.MaxUSD > 0 && spec.MaxUSD > remaining {
			c.Skipped = append(c.Skipped, spec.Workload.Name)
			continue
		}
		if remaining <= 0 {
			c.Skipped = append(c.Skipped, spec.Workload.Name)
			continue
		}
		res, err := c.runJobObserved(spec)
		if errors.Is(err, ErrBudgetExhausted) {
			// The job's completed attempts are real, billed work: keep the
			// partial result. Subsequent specs are skipped by the remaining-
			// budget check above.
			c.Results = append(c.Results, res)
			continue
		}
		if err != nil {
			return fmt.Errorf("cloud: campaign job %q: %w", spec.Workload.Name, err)
		}
		c.Results = append(c.Results, res)
	}
	return nil
}

// resumeSpec derives the checkpoint/restart spec for the steps a preempted
// attempt left unfinished. The time guard is rescaled from the *previous*
// attempt's spec at its per-step rate, so chained resumes keep the original
// prediction's seconds-per-step exactly instead of compounding a scale
// factor across attempts.
func resumeSpec(prev JobSpec, stepsDone int) JobSpec {
	resume := prev
	resume.Steps = prev.Steps - stepsDone
	if resume.PredictedSeconds > 0 {
		perStep := prev.PredictedSeconds / float64(prev.Steps)
		resume.PredictedSeconds = perStep * float64(resume.Steps)
	}
	return resume
}

// runJobObserved wraps runWithRetries in the job's lifecycle span on its
// own track, stamped with the simulated clock at start and end.
func (c *Campaign) runJobObserved(spec JobSpec) (JobResult, error) {
	span := c.Trace.StartChild(c.Root, "cloud.job", c.Provider.Clock())
	span.SetTrack("cloud:" + spec.Workload.Name)
	span.SetAttr("name", spec.Workload.Name)
	span.SetAttr("system", spec.System)
	span.SetAttr("steps", strconv.Itoa(spec.Steps))
	if spec.Spot {
		span.SetAttr("spot", "true")
	}
	defer func() { span.End(c.Provider.Clock()) }()
	c.Metrics.Counter("cloud_jobs_total").Inc()

	res, err := c.runWithRetries(spec, span)
	switch {
	case errors.Is(err, ErrBudgetExhausted):
		span.SetAttr("outcome", "budget_exhausted")
		c.Metrics.Counter("cloud_budget_exhausted_total").Inc()
	case err != nil:
		span.SetAttr("outcome", "error")
	case res.Aborted:
		span.SetAttr("outcome", "aborted")
	default:
		span.SetAttr("outcome", "completed")
		span.SetAttrF("usd", res.USD)
	}
	return res, err
}

// runAttempt executes one provisioning+compute attempt inside its own
// span and books its outcome into the registry.
func (c *Campaign) runAttempt(spec JobSpec, parent *obs.Span, n int) (JobResult, error) {
	span := c.Trace.StartChild(parent, "attempt", c.Provider.Clock())
	span.SetAttr("attempt", strconv.Itoa(n))
	defer func() { span.End(c.Provider.Clock()) }()

	res, err := c.Provider.RunJob(spec)
	if err != nil {
		span.SetAttr("outcome", "error")
		return res, err
	}
	span.SetAttr("steps", strconv.Itoa(res.StepsDone))
	span.SetAttrF("usd", res.USD)
	switch {
	case res.Preempted:
		span.SetAttr("outcome", "preempted")
		c.Metrics.Counter("cloud_preemptions_total").Inc()
	case res.Aborted:
		span.SetAttr("outcome", "aborted")
	default:
		span.SetAttr("outcome", "completed")
	}
	return res, nil
}

// runWithRetries executes one job, resuming spot preemptions from the
// completed step count (checkpoint/restart) up to MaxRetries times. The
// returned result aggregates steps, wall time and cost across attempts.
// Before each resume the remaining campaign budget is re-checked: when it
// is gone the partial result is returned with ErrBudgetExhausted, and the
// resume's cost guard is clamped so one attempt cannot overspend what is
// left.
func (c *Campaign) runWithRetries(spec JobSpec, span *obs.Span) (JobResult, error) {
	total, err := c.runAttempt(spec, span, 1)
	if err != nil {
		return JobResult{}, err
	}
	prev, prevDone := spec, total.StepsDone
	for retry := 0; total.Preempted && retry < c.MaxRetries; retry++ {
		if spec.Steps <= total.StepsDone {
			break
		}
		remaining := c.BudgetUSD - c.Provider.TotalSpend()
		if remaining <= 0 {
			return total, fmt.Errorf("resuming %q after %d/%d steps: %w",
				spec.Workload.Name, total.StepsDone, spec.Steps, ErrBudgetExhausted)
		}
		resume := resumeSpec(prev, prevDone)
		if resume.MaxUSD <= 0 || resume.MaxUSD > remaining {
			resume.MaxUSD = remaining
		}
		c.Metrics.Counter("cloud_retries_total").Inc()
		next, err := c.runAttempt(resume, span, retry+2)
		if err != nil {
			return JobResult{}, err
		}
		prev, prevDone = resume, next.StepsDone
		total.StepsDone += next.StepsDone
		total.WallSeconds += next.WallSeconds
		total.ProvisionSec += next.ProvisionSec
		total.USD += next.USD
		total.Preempted = next.Preempted
		total.Aborted = next.Aborted
		total.AbortReason = next.AbortReason
		total.Result.Steps = total.StepsDone
		total.Result.Seconds += next.Result.Seconds
		if total.Result.Seconds > 0 {
			total.Result.MFLUPS = float64(spec.Workload.Points) * float64(total.StepsDone) /
				total.Result.Seconds / 1e6
		}
		total.Result.CostUSD = total.USD
	}
	return total, nil
}
