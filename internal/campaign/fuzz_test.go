package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// FuzzParseCampaign throws arbitrary bytes at the campaign config
// parser. Load must never panic; when it accepts a config, the
// validated invariants must actually hold, per-job resolution must not
// panic, and re-encoding the config must parse back to the same value
// (the round-trip a user performs when a tool rewrites their config).
func FuzzParseCampaign(f *testing.F) {
	seeds := []string{
		// Minimal lattice-quantity campaign.
		`{"budget_usd":10,"objective":"min-cost","jobs":[{"name":"a","geometry":"cylinder","scale":6,"ranks":4,"steps":100}]}`,
		// Physical spec, steady flow.
		`{"budget_usd":25,"objective":"max-value","jobs":[{"name":"carotid","geometry":"stenosis","ranks":8,"physical":{"diameter_mm":6,"peak_speed_ms":0.4,"sites_across":48,"beats":2}}]}`,
		// Physical spec, pulsatile, pinned system, spot.
		`{"seed":7,"budget_usd":100,"objective":"min-time","retries":2,"jobs":[{"name":"aorta","geometry":"aorta","ranks":16,"system":"CSP-1","spot":true,"tolerance":0.1,"physical":{"diameter_mm":25,"peak_speed_ms":1.0,"heart_rate_hz":1.2,"sites_across":64,"beats":3}}]}`,
		// Fleet backend with scheduling contract fields.
		`{"budget_usd":50,"jobs":[{"name":"j1","geometry":"bifurcation","scale":8,"ranks":8,"steps":200,"priority":3,"deadline_s":1800,"on_demand_only":true}],"fleet":{"instances":[{"system":"CSP-1","count":2}],"max_retries":1,"backoff_base_s":30}}`,
		// Invalid inputs the parser must reject gracefully.
		`{"budget_usd":-1,"jobs":[]}`,
		`{"budget_usd":5,"jobs":[{"name":"x","geometry":"torus","scale":4,"ranks":1,"steps":10}]}`,
		`{"budget_usd":5,"jobs":[{"name":"x","geometry":"cylinder","scale":4,"ranks":1,"steps":10,"physical":{"diameter_mm":5,"peak_speed_ms":0.5,"sites_across":32,"beats":1}}]}`,
		`{"budget_usd":1e308,"objective":"max-throughput","jobs":[{"name":"big","geometry":"cerebral","ranks":1,"physical":{"diameter_mm":1e300,"peak_speed_ms":1e300,"sites_across":2147483647,"beats":1e300}}]}`,
		`not json at all`,
		`{"unknown_field":1,"budget_usd":10,"jobs":[{"name":"a","geometry":"cylinder","scale":6,"ranks":4,"steps":100}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}

		// Load claims the config is valid; spot-check the contract.
		if cfg.BudgetUSD <= 0 {
			t.Fatalf("accepted non-positive budget %g", cfg.BudgetUSD)
		}
		if len(cfg.Jobs) == 0 {
			t.Fatal("accepted a campaign with no jobs")
		}
		names := map[string]bool{}
		for _, j := range cfg.Jobs {
			if j.Name == "" || names[j.Name] {
				t.Fatalf("accepted missing/duplicate job name %q", j.Name)
			}
			names[j.Name] = true
			if j.Tolerance <= 0 {
				t.Fatalf("job %q passed validation with tolerance %g", j.Name, j.Tolerance)
			}
			// Resolution must not panic on any accepted job, and an
			// accepted lattice-quantity job must resolve verbatim.
			scale, steps, _, _, err := resolve(j)
			if j.Physical == nil {
				if err != nil {
					t.Fatalf("lattice job %q failed to resolve: %v", j.Name, err)
				}
				if scale != j.Scale || steps != j.Steps {
					t.Fatalf("lattice job %q resolved to (%g, %d), want (%g, %d)",
						j.Name, scale, steps, j.Scale, j.Steps)
				}
			} else if err == nil && steps < 1 {
				t.Fatalf("physical job %q resolved to %d steps without error", j.Name, steps)
			}
		}

		// Round trip: a validated config re-encodes to a config that
		// parses and validates to the same value.
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("re-encoding validated config: %v", err)
		}
		again, err := Load(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Fatalf("round trip drifted:\n first: %+v\nsecond: %+v", cfg, again)
		}
	})
}

// FuzzParseFleet throws arbitrary bytes at the fleet-section parser.
// Decoding must never panic; when a declaration validates, scheduler
// construction must succeed, and the declaration must survive a JSON
// round trip unchanged.
func FuzzParseFleet(f *testing.F) {
	seeds := []string{
		// Minimal single-group pool.
		`{"instances":[{"system":"CSP-1","count":2}]}`,
		// Mixed on-demand/spot pool with full fault policy.
		`{"instances":[{"system":"CSP-1","count":2},{"system":"CSP-2","count":1,"spot":true}],"max_retries":3,"backoff_base_s":30,"backoff_max_s":480,"backoff_jitter":0.25,"preemption_per_node_hour":0.05}`,
		// Declarations Validate must reject.
		`{"instances":[]}`,
		`{"instances":[{"system":"","count":1}]}`,
		`{"instances":[{"system":"CSP-1","count":0}]}`,
		`{"instances":[{"system":"NOPE-9","count":1}]}`,
		`{"instances":[{"system":"CSP-1","count":1}],"max_retries":-1}`,
		`{"instances":[{"system":"CSP-1","count":1}],"backoff_base_s":-5}`,
		`not json`,
		`{"instances":[{"system":"CSP-1","count":1}],"bogus_field":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var fc FleetConfig
		if err := dec.Decode(&fc); err != nil {
			return // rejected input: the only requirement is not panicking
		}

		cfg := Config{Seed: 1, BudgetUSD: 10, Fleet: &fc}
		fcfg := cfg.fleetConfig()
		if err := fcfg.Validate(); err != nil {
			// Invalid declarations must also be refused by the
			// constructor, not just the standalone validator.
			if _, schedErr := fleet.NewScheduler(fcfg); schedErr == nil {
				t.Fatalf("Validate rejected %+v (%v) but NewScheduler accepted it", fc, err)
			}
			return
		}
		if _, err := fleet.NewScheduler(fcfg); err != nil {
			t.Fatalf("validated fleet config %+v rejected by NewScheduler: %v", fc, err)
		}

		// Round trip: the declaration re-encodes to one that decodes
		// back to the same value.
		out, err := json.Marshal(fc)
		if err != nil {
			t.Fatalf("re-encoding validated fleet config: %v", err)
		}
		var again FleetConfig
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("re-parsing %s: %v", out, err)
		}
		if !reflect.DeepEqual(fc, again) {
			t.Fatalf("round trip drifted:\n first: %+v\nsecond: %+v", fc, again)
		}
	})
}

// TestLoadRejectsTrailingGarbageGracefully pins the decoder behavior the
// fuzzer relies on: one JSON value is read, errors are wrapped, and no
// input panics.
func TestLoadErrorsAreWrapped(t *testing.T) {
	_, err := Load(strings.NewReader(`{"budget_usd":`))
	if err == nil || !strings.Contains(err.Error(), "campaign:") {
		t.Fatalf("want wrapped parse error, got %v", err)
	}
}
