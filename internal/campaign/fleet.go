package campaign

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// FleetConfig declares the fleet execution backend inside a campaign
// configuration: the instance pool and the fault-handling policy. When a
// campaign carries one, RunFleet schedules all jobs concurrently across
// the pool instead of running them one at a time on one instance.
type FleetConfig struct {
	Instances             []fleet.InstanceConfig `json:"instances"`
	MaxRetries            int                    `json:"max_retries,omitempty"`
	BackoffBaseS          float64                `json:"backoff_base_s,omitempty"`
	BackoffMaxS           float64                `json:"backoff_max_s,omitempty"`
	BackoffJitter         float64                `json:"backoff_jitter,omitempty"`
	PreemptionPerNodeHour float64                `json:"preemption_per_node_hour,omitempty"`

	// SLOs are the objectives evaluated over the finished run's fleet
	// metrics (completions+sheds as the request stream, queue wait as
	// the latency histogram). nil takes the stock fleet objectives; an
	// empty non-nil slice disables SLO evaluation. A declared objective
	// with WindowS <= 0 covers the whole run.
	SLOs []obs.SLO `json:"slos,omitempty"`
}

// fleetConfig assembles the scheduler config from the campaign's budget,
// seed, and fleet declaration.
func (c Config) fleetConfig() fleet.Config {
	f := c.Fleet
	return fleet.Config{
		Seed:                  c.Seed,
		BudgetUSD:             c.BudgetUSD,
		MaxRetries:            f.MaxRetries,
		BackoffBaseS:          f.BackoffBaseS,
		BackoffMaxS:           f.BackoffMaxS,
		BackoffJitter:         f.BackoffJitter,
		PreemptionPerNodeHour: f.PreemptionPerNodeHour,
		Instances:             f.Instances,
	}
}

// FleetSummary reports a fleet-scheduled campaign.
type FleetSummary struct {
	Report   *fleet.Report
	Warnings []string // units-check findings, prefixed with the job name

	// Trace and Metrics carry the campaign's observability record: a
	// span tree rooted at the campaign span (seeded from the campaign
	// seed, so same-seed runs export byte-identical Chrome traces) and
	// the scheduler's counters, histograms, and per-job gauges.
	Trace   *obs.Tracer
	Metrics *obs.Registry

	// SLOs and Alerts are the post-run evaluation of the campaign's
	// objectives over the fleet metrics (nil when disabled). Alerts is
	// the deterministic transition log: same seed, same alerts.
	SLOs   []obs.SLOStatus
	Alerts []obs.SLOAlert
}

// Render formats the full fleet report: event log, per-instance
// utilization, and the per-job cost/deadline table.
func (s FleetSummary) Render() string {
	var b strings.Builder
	b.WriteString("=== event log ===\n")
	b.WriteString(s.Report.RenderEvents())
	b.WriteString("\n=== instance utilization ===\n")
	b.WriteString(s.Report.RenderUtilization())
	b.WriteString("\n=== jobs ===\n")
	b.WriteString(s.Report.RenderJobs())
	if s.Trace != nil {
		b.WriteString("\n")
		b.WriteString(dashboard.TracePanel(s.Trace.Spans(), s.Metrics.Snapshot()))
	}
	if s.SLOs != nil {
		b.WriteString("\n")
		b.WriteString(dashboard.SLOPanel(s.SLOs, s.Alerts))
	}
	for _, w := range s.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}

// fleetSLOs resolves the effective objectives for a run that ended at
// makespanS: nil declarations take the stock fleet objectives, and any
// objective without a window covers the whole run. The input slice is
// never mutated.
func fleetSLOs(declared []obs.SLO, makespanS float64) []obs.SLO {
	slos := declared
	if slos == nil {
		// Stock fleet objectives: at most 5% of jobs shed, and 90% of
		// placements waiting under 1024 s (a fleet_queue_wait_s bucket
		// bound, so the check is exact, not interpolated).
		slos = []obs.SLO{
			{Name: "fleet-completion", TargetAvailability: 0.95},
			{Name: "queue-wait-p90", LatencyQuantile: 0.90, LatencyBoundS: 1024},
		}
	}
	out := append([]obs.SLO(nil), slos...)
	for i := range out {
		if out[i].WindowS <= 0 {
			out[i].WindowS = makespanS + 1
		}
	}
	return out
}

// fleetSLOObs assembles the run's single cumulative observation from
// the scheduler's metrics: completions+sheds as the request total,
// sheds as the errors, and the queue-wait histogram (merged across
// label sets) as the latency distribution.
func fleetSLOObs(atS float64, metrics []obs.Metric) obs.SLOObs {
	o := obs.SLOObs{AtS: atS}
	for _, m := range metrics {
		switch {
		case m.Type == "counter" && (m.Name == "fleet_completions_total" || m.Name == "fleet_sheds_total"):
			o.Total += m.Value
			if m.Name == "fleet_sheds_total" {
				o.Errors += m.Value
			}
		case m.Type == "histogram" && m.Name == "fleet_queue_wait_s":
			if o.LatBounds == nil {
				o.LatBounds = append([]float64(nil), m.BucketLE...)
				o.LatCounts = make([]uint64, len(m.Counts))
			}
			if len(m.Counts) != len(o.LatCounts) {
				continue
			}
			for i, c := range m.Counts {
				o.LatCounts[i] += c
			}
			o.LatCount += m.Count
		}
	}
	return o
}

// RunFleet executes the campaign on the fleet backend: every job is
// prepared through the Figure 1 loop (anatomy, tuned model, per-system
// predictions), then the whole queue is scheduled concurrently across
// the declared instance pool. Completed jobs export telemetry into the
// framework's monitor and feed the refinement store.
func RunFleet(fw *core.Framework, cfg Config) (FleetSummary, error) {
	return runFleet(context.Background(), fw, cfg)
}

// runFleet is the fleet engine behind RunFleet and Runner. ctx is
// checked between job preparations and before the scheduler starts; the
// discrete-event schedule itself runs to completion once started (it
// simulates time rather than spending it).
func runFleet(ctx context.Context, fw *core.Framework, cfg Config) (FleetSummary, error) {
	if cfg.Fleet == nil {
		return FleetSummary{}, fmt.Errorf("campaign: no fleet declared in config")
	}
	if err := cfg.Validate(); err != nil {
		return FleetSummary{}, err
	}
	fcfg := cfg.fleetConfig()
	sched, err := fleet.NewScheduler(fcfg)
	if err != nil {
		return FleetSummary{}, err
	}

	// The distinct pool systems, in declaration order, for per-system
	// model predictions.
	var poolSystems []string
	seen := map[string]bool{}
	for _, ic := range fcfg.Instances {
		if !seen[ic.System] {
			seen[ic.System] = true
			poolSystems = append(poolSystems, ic.System)
		}
	}

	// Root the campaign span: job preparation happens inside it (zero
	// simulated duration, real wall duration), the fleet span nests under
	// it, and it closes at the fleet's final makespan.
	var summary FleetSummary
	summary.Trace = obs.NewTracer(cfg.Seed)
	summary.Metrics = obs.NewRegistry()
	root := summary.Trace.Start("campaign", 0)
	root.SetAttr("jobs", fmt.Sprintf("%d", len(cfg.Jobs)))
	endS := 0.0
	defer func() { root.End(endS) }()

	prep := summary.Trace.StartChild(root, "prepare", 0)
	defer prep.End(0) // closes the span on early error returns; the first End below wins otherwise
	jobs := make([]*fleet.Job, 0, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		if err := interrupted(ctx); err != nil {
			return FleetSummary{}, err
		}
		scale, steps, params, warnings, err := resolve(j)
		if err != nil {
			return FleetSummary{}, err
		}
		for _, w := range warnings {
			summary.Warnings = append(summary.Warnings, j.Name+": "+w)
		}
		dom, err := BuildGeometry(j.Geometry, scale)
		if err != nil {
			return FleetSummary{}, err
		}
		anatomy, err := fw.PrepareAnatomy(j.Name, dom, params)
		if err != nil {
			return FleetSummary{}, fmt.Errorf("campaign: preparing %q: %w", j.Name, err)
		}
		w, err := fw.Workload(anatomy, j.Ranks)
		if err != nil {
			return FleetSummary{}, fmt.Errorf("campaign: decomposing %q: %w", j.Name, err)
		}

		fj := &fleet.Job{
			Name:         j.Name,
			Workload:     w,
			Steps:        steps,
			Priority:     j.Priority,
			DeadlineS:    j.DeadlineS,
			Tolerance:    j.Tolerance,
			OnDemandOnly: j.OnDemandOnly,
			PerStep:      map[string]float64{},
			PredMFLUPS:   map[string]float64{},
		}
		if j.System != "" {
			if !seen[j.System] {
				return FleetSummary{}, fmt.Errorf(
					"campaign: job %q pins system %q, which the fleet pool does not offer", j.Name, j.System)
			}
			fj.Systems = []string{j.System}
		}
		// Model-driven placement: the paper's per-anatomy predictions
		// priced on every pool system the job fits on.
		for _, abbrev := range poolSystems {
			sys, err := fw.Provider.System(abbrev)
			if err != nil {
				continue // pool system outside this framework's catalog
			}
			if j.Ranks > sys.MaxRanks() {
				continue
			}
			pred, err := fw.PredictDirectTier(anatomy, abbrev, j.Ranks, jobTier(j))
			if err != nil {
				return FleetSummary{}, fmt.Errorf("campaign: predicting %q on %s: %w", j.Name, abbrev, err)
			}
			fj.PerStep[abbrev] = pred.SecondsPerStep
			fj.PredMFLUPS[abbrev] = pred.MFLUPS
		}
		jobs = append(jobs, fj)
	}
	prep.End(0)

	sched.Trace = summary.Trace
	sched.Metrics = summary.Metrics
	sched.Root = root

	if err := interrupted(ctx); err != nil {
		return FleetSummary{}, err
	}
	report, err := sched.Run(jobs)
	if err != nil {
		return FleetSummary{}, err
	}
	summary.Report = report
	endS = report.MakespanS

	// Judge the run against its objectives on the fleet's own metrics:
	// completions plus sheds form the request stream (a shed is the
	// fleet's 5xx), queue wait is the latency histogram, and the single
	// observation lands at the final makespan so whole-run windows see
	// everything. One observation can still fire alerts — the tracker
	// differences against the zero origin.
	if slos := fleetSLOs(cfg.Fleet.SLOs, report.MakespanS); len(slos) > 0 {
		tracker := obs.NewSLOTracker(slos)
		tracker.Observe(fleetSLOObs(report.MakespanS, summary.Metrics.Snapshot()))
		summary.SLOs = tracker.Status()
		summary.Alerts = tracker.Alerts()
	}

	// Close the loop through the metrics pipeline: the scheduler
	// published per-job gauges on completion; the monitor bridge
	// reassembles them into telemetry samples, and every
	// prediction-bearing sample becomes a refinement record.
	if _, err := fw.Monitor.IngestSnapshot(summary.Metrics.Snapshot()); err != nil {
		return summary, err
	}
	if err := fw.Monitor.FeedRefiner(&fw.Refiner); err != nil {
		return summary, err
	}
	return summary, nil
}
