// Package campaign runs complete simulation campaigns from a declarative
// JSON configuration: a list of patient cases (geometry, resolution, job
// length), a total budget, and an optimization objective. It drives the
// full Figure 1 loop for each case — characterize once, tune per anatomy,
// recommend an instance, guard the job, record telemetry — which is the
// workflow a clinical simulation service would script.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/monitor"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// PhysicalConfig declares a job in clinical units; the campaign derives
// the lattice configuration (scale, timestep count, inlet velocity,
// pulsatile waveform) through internal/units instead of requiring the
// user to think in lattice quantities.
type PhysicalConfig struct {
	DiameterMM   float64 `json:"diameter_mm"`
	PeakSpeedMps float64 `json:"peak_speed_ms"`
	HeartRateHz  float64 `json:"heart_rate_hz,omitempty"` // 0 = steady
	SitesAcross  int     `json:"sites_across"`            // lattice resolution
	Beats        float64 `json:"beats"`                   // cardiac cycles to simulate
}

// JobConfig declares one patient case, either in lattice terms (Scale +
// Steps) or physically (Physical).
type JobConfig struct {
	Name     string  `json:"name"`
	Geometry string  `json:"geometry"` // cylinder, aorta, cerebral, stenosis or bifurcation
	Scale    float64 `json:"scale,omitempty"`
	Ranks    int     `json:"ranks"`
	Steps    int     `json:"steps,omitempty"`
	// Physical, when present, derives Scale, Steps and the solver
	// parameters from clinical quantities; Scale and Steps must then be
	// left unset.
	Physical *PhysicalConfig `json:"physical,omitempty"`
	// System pins the instance type; empty lets the dashboard recommend
	// one under the campaign objective.
	System string `json:"system,omitempty"`
	// Tolerance for the model-driven time guard (default 0.25).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Tier selects the prediction accuracy tier for planning this job
	// ("tier0", "tier1", "tier2" or "auto"); empty keeps the calibrated
	// Tier 1 default.
	Tier string `json:"tier,omitempty"`
	// Spot requests preemptible capacity for this job.
	Spot bool `json:"spot,omitempty"`

	// Fleet-backend scheduling contract (ignored by the sequential
	// runner): queue priority (higher places first), an absolute
	// simulated-time deadline in seconds (0 = none), and whether spot
	// pool capacity is off-limits for this job.
	Priority     int     `json:"priority,omitempty"`
	DeadlineS    float64 `json:"deadline_s,omitempty"`
	OnDemandOnly bool    `json:"on_demand_only,omitempty"`
}

// Config declares a whole campaign.
type Config struct {
	Seed      int64       `json:"seed"`
	BudgetUSD float64     `json:"budget_usd"`
	Objective string      `json:"objective"` // max-throughput|min-cost|min-time|max-value
	Deadline  float64     `json:"deadline_seconds,omitempty"`
	Retries   int         `json:"retries,omitempty"` // spot preemption retries
	Jobs      []JobConfig `json:"jobs"`

	// Fleet, when present, selects the concurrent fleet-scheduler
	// backend (RunFleet) over the sequential runner: jobs are placed
	// across this pool of simulated instances by priority and deadline.
	Fleet *FleetConfig `json:"fleet,omitempty"`
}

// Load parses and validates a campaign configuration.
func Load(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("campaign: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration before any money is spent.
func (c *Config) Validate() error {
	if c.BudgetUSD <= 0 {
		return fmt.Errorf("campaign: budget_usd %g must be positive", c.BudgetUSD)
	}
	if _, err := objective(c.Objective); err != nil {
		return err
	}
	if len(c.Jobs) == 0 {
		return fmt.Errorf("campaign: no jobs declared")
	}
	seen := map[string]bool{}
	for i := range c.Jobs {
		j := &c.Jobs[i]
		if j.Name == "" {
			return fmt.Errorf("campaign: job %d has no name", i)
		}
		if seen[j.Name] {
			return fmt.Errorf("campaign: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		switch j.Geometry {
		case "cylinder", "aorta", "cerebral", "stenosis", "bifurcation":
		default:
			return fmt.Errorf("campaign: job %q has unknown geometry %q", j.Name, j.Geometry)
		}
		if j.Physical != nil {
			if j.Scale != 0 || j.Steps != 0 {
				return fmt.Errorf("campaign: job %q sets both physical and lattice quantities", j.Name)
			}
			ph := j.Physical
			if ph.DiameterMM <= 0 || ph.PeakSpeedMps <= 0 || ph.SitesAcross < 8 || ph.Beats <= 0 {
				return fmt.Errorf("campaign: job %q has incomplete physical spec %+v", j.Name, ph)
			}
			//lint:ignore floateq 0 is the documented steady-flow sentinel, never a computed value
			if ph.HeartRateHz == 0 {
				// Steady flow: "beats" counts characteristic times D/U.
			}
		} else {
			if j.Scale <= 0 {
				return fmt.Errorf("campaign: job %q scale %g must be positive", j.Name, j.Scale)
			}
			if j.Steps < 1 {
				return fmt.Errorf("campaign: job %q needs positive steps", j.Name)
			}
		}
		if j.Ranks < 1 {
			return fmt.Errorf("campaign: job %q needs positive ranks", j.Name)
		}
		if j.Tolerance < 0 {
			return fmt.Errorf("campaign: job %q tolerance %g negative", j.Name, j.Tolerance)
		}
		if j.Tolerance == 0 {
			j.Tolerance = 0.25
		}
		if j.DeadlineS < 0 {
			return fmt.Errorf("campaign: job %q deadline_s %g negative", j.Name, j.DeadlineS)
		}
		switch j.Tier {
		case "", perfmodel.TierAuto, perfmodel.Tier0Physics, perfmodel.Tier1Calibrated, perfmodel.Tier2Measured:
		default:
			return fmt.Errorf("campaign: job %q tier %q must be one of %v (or empty for %q)",
				j.Name, j.Tier, perfmodel.ValidTiers(), perfmodel.Tier1Calibrated)
		}
	}
	if c.Fleet != nil {
		if err := c.fleetConfig().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// jobTier normalizes a job's accuracy-tier selector: empty keeps the
// legacy calibrated (Tier 1) planning path.
func jobTier(j JobConfig) string {
	if j.Tier == "" {
		return perfmodel.Tier1Calibrated
	}
	return j.Tier
}

// objective maps the config string to a dashboard objective.
func objective(s string) (dashboard.Objective, error) {
	obj, err := dashboard.ParseObjective(s)
	if err != nil {
		return 0, fmt.Errorf("campaign: unknown objective %q", s)
	}
	return obj, nil
}

// BuildGeometry constructs a declared domain at the given scale (vessel
// radius in lattice sites). It is exported for the serving layer, which
// builds workloads from the same geometry vocabulary campaign configs
// use.
func BuildGeometry(name string, scale float64) (*geometry.Domain, error) {
	switch name {
	case "cylinder":
		return geometry.Cylinder(int(8*scale), scale)
	case "aorta":
		return geometry.Aorta(scale)
	case "cerebral":
		return geometry.Cerebral(scale/2, 4)
	case "stenosis":
		return geometry.StenosedCylinder(int(8*scale), scale, 0.5, scale*0.75)
	case "bifurcation":
		return geometry.Bifurcation(scale)
	}
	return nil, fmt.Errorf("campaign: unknown geometry %q", name)
}

// resolve turns a job config into concrete lattice quantities: the
// geometry scale, the timestep count, the solver parameters, and any
// configuration warnings from the units check.
func resolve(j JobConfig) (scale float64, steps int, params lbm.Params, warnings []string, err error) {
	params = lbm.Params{Tau: 0.9, UMax: 0.02}
	if j.Physical == nil {
		return j.Scale, j.Steps, params, nil, nil
	}
	ph := j.Physical

	// Pick the relaxation time so the peak lattice speed lands at a safe
	// target (standard LBM practice: at fixed resolution, tau sets the
	// timestep and thus the velocity scale). Coarse grids at high
	// Reynolds push tau toward 1/2; the TRT operator keeps those stable.
	const targetU = 0.05
	re := ph.PeakSpeedMps * ph.DiameterMM * 1e-3 / units.BloodKinematicViscosity
	nuLat := targetU * float64(ph.SitesAcross) / re
	tau := 3*nuLat + 0.5
	switch {
	case tau < 0.505:
		return 0, 0, params, nil, fmt.Errorf(
			"campaign: job %q needs tau %.4f to reach lattice speed %.2f at Re %.0f — increase sites_across",
			j.Name, tau, targetU, re)
	case tau < 0.55:
		params.Collision = lbm.TRT
		warnings = append(warnings, fmt.Sprintf("tau %.3f near the stability limit: using TRT", tau))
	case tau > 2:
		tau = 2 // very low Re: cap tau, accept a slower lattice speed
	}
	params.Tau = tau

	conv, err := units.Convert(units.Physical{
		DiameterM:    ph.DiameterMM * 1e-3,
		PeakSpeedMps: ph.PeakSpeedMps,
		HeartRateHz:  ph.HeartRateHz,
	}, units.Lattice{SitesAcross: ph.SitesAcross, Tau: params.Tau})
	if err != nil {
		return 0, 0, params, nil, fmt.Errorf("campaign: job %q units: %w", j.Name, err)
	}
	warnings = append(warnings, conv.Check()...)
	scale = float64(ph.SitesAcross) / 2
	params.UMax = conv.ULattice
	if ph.HeartRateHz > 0 {
		params.Pulsatile = lbm.Waveform{Period: conv.StepsPerBeat, Amplitude: 0.5}
		steps = int(ph.Beats * conv.StepsPerBeat)
	} else {
		// Steady flow: "beats" counts flow-through times D/U.
		flowThrough := ph.DiameterMM * 1e-3 / ph.PeakSpeedMps
		steps = conv.StepsForPhysicalTime(ph.Beats * flowThrough)
	}
	if steps < 1 {
		return 0, 0, params, warnings, fmt.Errorf("campaign: job %q resolves to %d steps", j.Name, steps)
	}
	return scale, steps, params, warnings, nil
}

// JobOutcome reports one executed job.
type JobOutcome struct {
	Name            string
	System          string
	Planned         bool // false when skipped for budget
	Result          cloud.JobResult
	PredictedMFLUPS float64 // prediction at plan time
}

// Summary reports a finished campaign.
type Summary struct {
	Outcomes []JobOutcome
	Skipped  []string
	Warnings []string // units-check findings, prefixed with the job name
	SpentUSD float64
}

// Render formats the summary as a text report.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-12s %10s %12s %12s %10s %s\n",
		"job", "system", "steps", "predicted", "measured", "USD", "status")
	for _, o := range s.Outcomes {
		status := "completed"
		if o.Result.Preempted {
			status = "preempted"
		} else if o.Result.Aborted {
			status = "aborted: " + o.Result.AbortReason
		}
		fmt.Fprintf(&b, "%-22s %-12s %10d %12.2f %12.2f %10.4f %s\n",
			o.Name, o.System, o.Result.StepsDone, o.PredictedMFLUPS, o.Result.Result.MFLUPS,
			o.Result.USD, status)
	}
	for _, name := range s.Skipped {
		fmt.Fprintf(&b, "%-22s %-12s %10s %12s %12s %10s %s\n",
			name, "-", "-", "-", "-", "-", "skipped (budget)")
	}
	for _, w := range s.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	fmt.Fprintf(&b, "total spend: $%.4f\n", s.SpentUSD)
	return b.String()
}

// Run executes the campaign against a framework (which carries the
// characterized dashboard and simulated provider).
func Run(fw *core.Framework, cfg Config) (Summary, error) {
	return runSerial(context.Background(), fw, cfg)
}

// runSerial is the sequential engine behind Run and Runner. It checks
// ctx between jobs: an interruption returns the partial summary under
// ErrInterrupted with every completed job's spend and telemetry intact.
func runSerial(ctx context.Context, fw *core.Framework, cfg Config) (Summary, error) {
	if err := cfg.Validate(); err != nil {
		return Summary{}, err
	}
	obj, err := objective(cfg.Objective)
	if err != nil {
		return Summary{}, err
	}
	runner := cloud.Campaign{Provider: fw.Provider, BudgetUSD: cfg.BudgetUSD, MaxRetries: cfg.Retries}
	var summary Summary
	for _, j := range cfg.Jobs {
		if err := interrupted(ctx); err != nil {
			summary.SpentUSD = fw.Provider.TotalSpend()
			return summary, err
		}
		scale, steps, params, warnings, err := resolve(j)
		if err != nil {
			return Summary{}, err
		}
		for _, w := range warnings {
			summary.Warnings = append(summary.Warnings, j.Name+": "+w)
		}
		dom, err := BuildGeometry(j.Geometry, scale)
		if err != nil {
			return Summary{}, err
		}
		anatomy, err := fw.PrepareAnatomy(j.Name, dom, params)
		if err != nil {
			return Summary{}, fmt.Errorf("campaign: preparing %q: %w", j.Name, err)
		}
		system := j.System
		if system == "" {
			best, err := fw.Recommend(anatomy, j.Ranks, steps, obj, cfg.Deadline)
			if err != nil {
				return Summary{}, fmt.Errorf("campaign: recommending for %q: %w", j.Name, err)
			}
			system = best.System
		}
		pred, err := fw.PredictDirectTier(anatomy, system, j.Ranks, jobTier(j))
		if err != nil {
			return Summary{}, err
		}
		spec, err := fw.PlanJob(anatomy, system, j.Ranks, steps, j.Tolerance)
		if err != nil {
			return Summary{}, fmt.Errorf("campaign: planning %q: %w", j.Name, err)
		}
		spec.Spot = j.Spot

		before := len(runner.Results)
		if err := runner.Run([]cloud.JobSpec{spec}); err != nil {
			return Summary{}, err
		}
		if len(runner.Results) == before {
			summary.Skipped = append(summary.Skipped, j.Name)
			continue
		}
		res := runner.Results[len(runner.Results)-1]
		summary.Outcomes = append(summary.Outcomes, JobOutcome{
			Name: j.Name, System: system, Planned: true,
			Result: res, PredictedMFLUPS: pred.MFLUPS,
		})
		// Feed the refinement loop and the telemetry monitor with
		// completed, unaborted runs — the same measure→model→refine
		// loop the fleet backend closes through its metrics snapshot.
		if !res.Aborted && res.StepsDone > 0 {
			if err := fw.Record(anatomy, pred, res.Result); err != nil {
				return Summary{}, err
			}
			if err := fw.Monitor.Add(monitor.Sample{
				TimeS:     fw.Provider.Clock(),
				Workload:  j.Name,
				System:    system,
				Model:     pred.Model,
				Ranks:     j.Ranks,
				MFLUPS:    res.Result.MFLUPS,
				Predicted: pred.MFLUPS,
				CostUSD:   res.USD,
			}); err != nil {
				return Summary{}, err
			}
		}
	}
	summary.SpentUSD = fw.Provider.TotalSpend()
	return summary, nil
}
