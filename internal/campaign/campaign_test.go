package campaign

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

const validConfig = `{
  "seed": 7,
  "budget_usd": 1.0,
  "objective": "min-cost",
  "deadline_seconds": 60,
  "jobs": [
    {"name": "patient-a", "geometry": "cylinder", "scale": 8, "ranks": 32, "steps": 500},
    {"name": "patient-b", "geometry": "aorta", "scale": 6, "ranks": 32, "steps": 500, "tolerance": 0.3}
  ]
}`

func TestLoadValid(t *testing.T) {
	cfg, err := Load(strings.NewReader(validConfig))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Jobs) != 2 || cfg.BudgetUSD != 1.0 {
		t.Fatalf("config parsed wrong: %+v", cfg)
	}
	// Default tolerance filled in.
	if cfg.Jobs[0].Tolerance != 0.25 {
		t.Errorf("default tolerance = %v, want 0.25", cfg.Jobs[0].Tolerance)
	}
	if cfg.Jobs[1].Tolerance != 0.3 {
		t.Errorf("explicit tolerance overridden: %v", cfg.Jobs[1].Tolerance)
	}
}

func TestLoadRejectsBadConfigs(t *testing.T) {
	bad := []string{
		`not json`,
		`{"budget_usd": 0, "jobs": [{"name":"a","geometry":"aorta","scale":6,"ranks":4,"steps":10}]}`,
		`{"budget_usd": 1, "jobs": []}`,
		`{"budget_usd": 1, "objective": "wat", "jobs": [{"name":"a","geometry":"aorta","scale":6,"ranks":4,"steps":10}]}`,
		`{"budget_usd": 1, "jobs": [{"name":"","geometry":"aorta","scale":6,"ranks":4,"steps":10}]}`,
		`{"budget_usd": 1, "jobs": [{"name":"a","geometry":"spleen","scale":6,"ranks":4,"steps":10}]}`,
		`{"budget_usd": 1, "jobs": [{"name":"a","geometry":"aorta","scale":0,"ranks":4,"steps":10}]}`,
		`{"budget_usd": 1, "jobs": [{"name":"a","geometry":"aorta","scale":6,"ranks":0,"steps":10}]}`,
		`{"budget_usd": 1, "jobs": [{"name":"a","geometry":"aorta","scale":6,"ranks":4,"steps":10},{"name":"a","geometry":"aorta","scale":6,"ranks":4,"steps":10}]}`,
		`{"budget_usd": 1, "unknown_field": true, "jobs": [{"name":"a","geometry":"aorta","scale":6,"ranks":4,"steps":10}]}`,
	}
	for i, s := range bad {
		if _, err := Load(strings.NewReader(s)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunCampaignEndToEnd(t *testing.T) {
	cfg, err := Load(strings.NewReader(validConfig))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Outcomes) != 2 {
		t.Fatalf("outcomes: %d, want 2 (skipped: %v)", len(sum.Outcomes), sum.Skipped)
	}
	for _, o := range sum.Outcomes {
		if o.Result.Aborted {
			t.Errorf("job %s aborted: %s", o.Name, o.Result.AbortReason)
		}
		if o.Result.StepsDone != 500 {
			t.Errorf("job %s incomplete: %d steps", o.Name, o.Result.StepsDone)
		}
		if o.System == "" || o.PredictedMFLUPS <= 0 {
			t.Errorf("job %s missing plan info: %+v", o.Name, o)
		}
	}
	if sum.SpentUSD <= 0 || sum.SpentUSD > cfg.BudgetUSD*1.5 {
		t.Errorf("spend %v implausible for budget %v", sum.SpentUSD, cfg.BudgetUSD)
	}
	// Completed runs fed the refiner.
	if fw.Refiner.Len() != 2 {
		t.Errorf("refiner has %d records, want 2", fw.Refiner.Len())
	}
	text := sum.Render()
	for _, want := range []string{"patient-a", "patient-b", "completed", "total spend"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestRunCampaignPinnedSystemAndSpot(t *testing.T) {
	cfg := Config{
		Seed: 3, BudgetUSD: 5, Objective: "max-value", Retries: 20,
		Jobs: []JobConfig{{
			Name: "spot-job", Geometry: "cylinder", Scale: 6,
			Ranks: 16, Steps: 300, System: "CSP-2 Small", Spot: true, Tolerance: 0.5,
		}},
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v", sum)
	}
	o := sum.Outcomes[0]
	if o.System != "CSP-2 Small" {
		t.Errorf("pinned system ignored: %s", o.System)
	}
	if o.Result.StepsDone != 300 {
		t.Errorf("spot job incomplete: %d", o.Result.StepsDone)
	}
}

func TestRunCampaignBudgetSkips(t *testing.T) {
	cfg := Config{
		Seed: 3, BudgetUSD: 1e-9, Objective: "min-cost",
		Jobs: []JobConfig{{
			Name: "too-expensive", Geometry: "cylinder", Scale: 6,
			Ranks: 16, Steps: 300, System: "CSP-2 Small",
		}},
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Skipped) != 1 || len(sum.Outcomes) != 0 {
		t.Errorf("budget skip failed: %+v", sum)
	}
	if !strings.Contains(sum.Render(), "skipped") {
		t.Error("summary does not show the skip")
	}
}

func TestPhysicalJobConfig(t *testing.T) {
	cfg := Config{
		Seed: 5, BudgetUSD: 5, Objective: "max-value",
		Jobs: []JobConfig{{
			Name: "coronary", Geometry: "cylinder", Ranks: 16,
			System: "CSP-2 Small",
			Physical: &PhysicalConfig{
				DiameterMM: 3, PeakSpeedMps: 0.3, HeartRateHz: 1.2,
				SitesAcross: 16, Beats: 0.002,
			},
		}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	scale, steps, params, _, err := resolve(cfg.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if scale != 8 {
		t.Errorf("scale = %v, want 8 (16 sites across)", scale)
	}
	if steps < 1 {
		t.Errorf("steps = %d", steps)
	}
	if params.UMax <= 0 || params.UMax > 0.3 {
		t.Errorf("derived inlet speed %v out of range", params.UMax)
	}
	if params.Pulsatile.Period <= 0 {
		t.Error("pulsatile waveform not derived from heart rate")
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Outcomes) != 1 || sum.Outcomes[0].Result.StepsDone != steps {
		t.Fatalf("physical job did not run to completion: %+v", sum)
	}
}

func TestPhysicalConfigValidation(t *testing.T) {
	base := JobConfig{
		Name: "x", Geometry: "cylinder", Ranks: 4,
		Physical: &PhysicalConfig{DiameterMM: 3, PeakSpeedMps: 0.3, SitesAcross: 16, Beats: 1},
	}
	mix := base
	mix.Scale = 8 // both physical and lattice set
	cfg := Config{BudgetUSD: 1, Jobs: []JobConfig{mix}}
	if err := cfg.Validate(); err == nil {
		t.Error("want error for mixed physical+lattice spec")
	}
	incomplete := base
	incomplete.Physical = &PhysicalConfig{DiameterMM: 3}
	cfg = Config{BudgetUSD: 1, Jobs: []JobConfig{incomplete}}
	if err := cfg.Validate(); err == nil {
		t.Error("want error for incomplete physical spec")
	}
	steady := base
	steady.Physical = &PhysicalConfig{DiameterMM: 3, PeakSpeedMps: 0.3, SitesAcross: 16, Beats: 5}
	_, steps, params, _, err := resolve(steady)
	if err != nil {
		t.Fatal(err)
	}
	if params.Pulsatile.Period != 0 {
		t.Error("steady physical job grew a waveform")
	}
	if steps < 1 {
		t.Errorf("steady steps = %d", steps)
	}
}
