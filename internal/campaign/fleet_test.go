package campaign

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/obs"
)

const fleetConfigJSON = `{
  "seed": 11,
  "budget_usd": 1.0,
  "objective": "min-cost",
  "fleet": {
    "instances": [
      {"system": "CSP-2 Small", "count": 1, "spot": true},
      {"system": "CSP-2 Small", "count": 1},
      {"system": "CSP-1", "count": 1}
    ],
    "max_retries": 10,
    "preemption_per_node_hour": 2e5
  },
  "jobs": [
    {"name": "fleet-a", "geometry": "cylinder", "scale": 6, "ranks": 16, "steps": 300, "priority": 2},
    {"name": "fleet-b", "geometry": "cylinder", "scale": 6, "ranks": 8, "steps": 250, "priority": 1},
    {"name": "fleet-c", "geometry": "cylinder", "scale": 5, "ranks": 8, "steps": 200,
     "on_demand_only": true},
    {"name": "fleet-d", "geometry": "cylinder", "scale": 5, "ranks": 8, "steps": 200}
  ]
}`

func runFleetOnce(t *testing.T) (*core.Framework, FleetSummary) {
	t.Helper()
	cfg, err := Load(strings.NewReader(fleetConfigJSON))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunFleet(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fw, sum
}

func TestRunFleetEndToEnd(t *testing.T) {
	fw, sum := runFleetOnce(t)
	r := sum.Report
	if r.Completed != 4 || r.Shed != 0 {
		t.Fatalf("completed %d, shed %d; jobs:\n%s", r.Completed, r.Shed, r.RenderJobs())
	}
	if r.SpentUSD <= 0 || r.SpentUSD > r.BudgetUSD {
		t.Errorf("spend $%v implausible for budget $%v", r.SpentUSD, r.BudgetUSD)
	}
	for _, j := range r.Jobs {
		if j.StepsDone != j.Steps {
			t.Errorf("job %s incomplete: %d/%d", j.Name, j.StepsDone, j.Steps)
		}
		if j.MFLUPS <= 0 || j.PredMFLUPS <= 0 {
			t.Errorf("job %s missing measured/predicted throughput: %+v", j.Name, j)
		}
	}
	// Completed jobs became telemetry and fed the refinement store.
	if got := len(fw.Monitor.Records()); got != 4 {
		t.Errorf("monitor has %d samples, want 4", got)
	}
	if fw.Refiner.Len() != 4 {
		t.Errorf("refiner has %d records, want 4", fw.Refiner.Len())
	}
	text := sum.Render()
	for _, want := range []string{"event log", "instance utilization", "jobs", "fleet-a", "submitted", "completed"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	// The stock objectives evaluate over the run and land in the report.
	if len(sum.SLOs) != 2 {
		t.Fatalf("want 2 stock SLO statuses, got %+v", sum.SLOs)
	}
	if got := sum.SLOs[0].WindowTotal; got != 4 {
		t.Errorf("completion SLO saw %v requests, want 4", got)
	}
	for _, want := range []string{"=== slo ===", "fleet-completion", "queue-wait-p90"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	// A clean run (zero sheds) must not fire anything.
	if len(sum.Alerts) != 0 {
		t.Errorf("clean run produced alerts: %+v", sum.Alerts)
	}
}

// TestRunFleetSLODisabled: an empty non-nil declaration opts out of SLO
// evaluation and of the panel.
func TestRunFleetSLODisabled(t *testing.T) {
	cfg, err := Load(strings.NewReader(fleetConfigJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fleet.SLOs = []obs.SLO{}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunFleet(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SLOs != nil || strings.Contains(sum.Render(), "=== slo ===") {
		t.Fatalf("SLO evaluation ran despite empty declaration: %+v", sum.SLOs)
	}
}

// TestRunFleetSLOAlertFires: an unreachable declared objective must trip
// exactly one firing alert and render it in the report's SLO panel.
func TestRunFleetSLOAlertFires(t *testing.T) {
	cfg, err := Load(strings.NewReader(fleetConfigJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Every queue wait is > 0s at some point in a contended 4-job run on
	// 3 instances, so demanding p99 <= 1s is deterministic failure bait.
	cfg.Fleet.SLOs = []obs.SLO{{Name: "impossible-wait", LatencyQuantile: 0.99, LatencyBoundS: 1}}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunFleet(fw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Alerts) != 1 || sum.Alerts[0].State != "firing" || sum.Alerts[0].SLO != "impossible-wait" {
		t.Fatalf("want exactly one firing alert, got %+v", sum.Alerts)
	}
	text := sum.Render()
	if !strings.Contains(text, "slo impossible-wait firing") || !strings.Contains(text, "FIRING") {
		t.Fatalf("firing alert missing from report:\n%s", text)
	}
}

// TestRunFleetDeterministic runs the whole pipeline twice from scratch:
// framework characterization, predictions, and the concurrent schedule
// must reproduce byte-for-byte under one seed.
func TestRunFleetDeterministic(t *testing.T) {
	_, s1 := runFleetOnce(t)
	_, s2 := runFleetOnce(t)
	if s1.Render() != s2.Render() {
		t.Errorf("same-seed fleet campaigns differ:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			s1.Render(), s2.Render())
	}
}

func TestRunFleetRejectsPinOutsidePool(t *testing.T) {
	cfg := Config{
		Seed: 1, BudgetUSD: 1, Objective: "min-cost",
		Fleet: &FleetConfig{Instances: []fleet.InstanceConfig{{System: "CSP-2 Small", Count: 1}}},
		Jobs: []JobConfig{{
			Name: "pinned", Geometry: "cylinder", Scale: 5, Ranks: 8, Steps: 100,
			System: "TRC",
		}},
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFleet(fw, cfg); err == nil || !strings.Contains(err.Error(), "pool") {
		t.Fatalf("pin outside pool accepted: %v", err)
	}
}

func TestRunFleetRequiresFleetBlock(t *testing.T) {
	cfg := Config{
		Seed: 1, BudgetUSD: 1, Objective: "min-cost",
		Jobs: []JobConfig{{Name: "a", Geometry: "cylinder", Scale: 5, Ranks: 8, Steps: 100}},
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFleet(fw, cfg); err == nil {
		t.Fatal("fleet backend ran without a fleet declaration")
	}
}
