package campaign

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Backend selects the campaign execution engine.
type Backend string

// Available backends.
const (
	// BackendAuto picks BackendFleet when the config declares an
	// instance pool and BackendSerial otherwise.
	BackendAuto Backend = ""
	// BackendSerial runs jobs one at a time on one recommended
	// instance each (the original Figure 1 loop).
	BackendSerial Backend = "serial"
	// BackendFleet schedules all jobs concurrently across the
	// config's instance pool.
	BackendFleet Backend = "fleet"
)

// ParseBackend maps a config/API string to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "serial":
		return BackendSerial, nil
	case "fleet":
		return BackendFleet, nil
	}
	return "", fmt.Errorf("campaign: unknown backend %q", s)
}

// ErrInterrupted reports that context cancellation stopped a campaign at
// a clean point between jobs. The Outcome accompanying the error carries
// everything finished before the interruption.
var ErrInterrupted = errors.New("campaign: interrupted")

// Runner is the options struct behind the single campaign entrypoint:
// both CLIs and POST /v1/campaigns dispatch serial and fleet execution
// through Runner.Run instead of duplicating config plumbing per mode.
type Runner struct {
	Backend Backend
}

// Outcome is a campaign result from either backend. Exactly one of
// Serial/Fleet is populated, matching Backend.
type Outcome struct {
	Backend Backend
	Serial  *Summary
	Fleet   *FleetSummary
}

// Render formats whichever backend report the outcome carries.
func (o Outcome) Render() string {
	switch {
	case o.Serial != nil:
		return o.Serial.Render()
	case o.Fleet != nil:
		return o.Fleet.Render()
	}
	return ""
}

// Warnings returns the units-check findings from either backend.
func (o Outcome) Warnings() []string {
	switch {
	case o.Serial != nil:
		return o.Serial.Warnings
	case o.Fleet != nil:
		return o.Fleet.Warnings
	}
	return nil
}

// resolve picks the concrete backend for a config.
func (r Runner) resolve(cfg Config) (Backend, error) {
	switch r.Backend {
	case BackendAuto:
		if cfg.Fleet != nil {
			return BackendFleet, nil
		}
		return BackendSerial, nil
	case BackendSerial:
		// A fleet block in the config is ignored: the caller asked for
		// the sequential engine explicitly.
		return BackendSerial, nil
	case BackendFleet:
		if cfg.Fleet == nil {
			return "", fmt.Errorf("campaign: fleet backend requested but config declares no fleet pool")
		}
		return BackendFleet, nil
	}
	return "", fmt.Errorf("campaign: unknown backend %q", r.Backend)
}

// Run executes the campaign on the selected backend. Cancelling ctx
// stops the run at the next clean point between jobs and returns the
// partial Outcome with an error wrapping ErrInterrupted; determinism is
// unaffected because cancellation only truncates the job sequence.
func (r Runner) Run(ctx context.Context, fw *core.Framework, cfg Config) (Outcome, error) {
	be, err := r.resolve(cfg)
	if err != nil {
		return Outcome{}, err
	}
	switch be {
	case BackendSerial:
		s, err := runSerial(ctx, fw, cfg)
		return Outcome{Backend: BackendSerial, Serial: &s}, err
	default:
		fs, err := runFleet(ctx, fw, cfg)
		return Outcome{Backend: BackendFleet, Fleet: &fs}, err
	}
}

// interrupted reports whether ctx was cancelled, wrapping the cause
// under ErrInterrupted.
func interrupted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrInterrupted, err)
	}
	return nil
}
