package campaign

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestParseBackend(t *testing.T) {
	good := map[string]Backend{
		"": BackendAuto, "auto": BackendAuto,
		"serial": BackendSerial, "fleet": BackendFleet,
	}
	for s, want := range good {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBackend("mainframe"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestRunnerResolve(t *testing.T) {
	serialCfg := Config{}
	fleetCfg := Config{Fleet: &FleetConfig{}}

	cases := []struct {
		runner  Runner
		cfg     Config
		want    Backend
		wantErr bool
	}{
		{Runner{}, serialCfg, BackendSerial, false},
		{Runner{}, fleetCfg, BackendFleet, false},
		{Runner{Backend: BackendSerial}, fleetCfg, BackendSerial, false},
		{Runner{Backend: BackendFleet}, fleetCfg, BackendFleet, false},
		{Runner{Backend: BackendFleet}, serialCfg, "", true},
		{Runner{Backend: Backend("mainframe")}, serialCfg, "", true},
	}
	for i, tc := range cases {
		got, err := tc.runner.resolve(tc.cfg)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("case %d: resolve = %v, %v; want %v (err %v)", i, got, err, tc.want, tc.wantErr)
		}
	}
}

// TestRunnerMatchesRun pins the satellite's contract: the Runner entry
// produces the same serial summary as the historical Run call on an
// identically seeded framework.
func TestRunnerMatchesRun(t *testing.T) {
	cfg, err := Load(strings.NewReader(validConfig))
	if err != nil {
		t.Fatal(err)
	}
	fw1, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}

	want, err := Run(fw1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := Runner{Backend: BackendSerial}.Run(context.Background(), fw2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Backend != BackendSerial || outcome.Serial == nil || outcome.Fleet != nil {
		t.Fatalf("outcome shape wrong: %+v", outcome)
	}
	if got := outcome.Render(); got != want.Render() {
		t.Errorf("Runner render diverges from Run:\n--- runner\n%s--- run\n%s", got, want.Render())
	}
}

// TestRunnerInterrupted: a cancelled context stops the campaign at the
// next clean point with ErrInterrupted and the partial summary intact.
func TestRunnerInterrupted(t *testing.T) {
	cfg, err := Load(strings.NewReader(validConfig))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt before the first job

	outcome, err := Runner{}.Run(ctx, fw, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if outcome.Serial == nil {
		t.Fatal("interrupted run lost its partial summary")
	}
	if n := len(outcome.Serial.Outcomes); n != 0 {
		t.Errorf("pre-cancelled run completed %d jobs, want 0", n)
	}
}

// TestRunFleetInterrupted covers the fleet backend's clean point.
func TestRunFleetInterrupted(t *testing.T) {
	cfg, err := Load(strings.NewReader(fleetConfigJSON))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.NewFramework(machine.Catalog(), 2, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err = Runner{Backend: BackendFleet}.Run(ctx, fw, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}
