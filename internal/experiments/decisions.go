package experiments

import (
	"fmt"

	"repro/internal/dashboard"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
)

// Fig11 regenerates the relative-value heatmap (Figure 11): r_{B,A} of
// Eq. 17 for HARVEY on the aorta at 2048 cores, predicted by the
// generalized model on TRC, CSP-2 and CSP-2 EC. Series: "<B>/<A>" single
// points carrying the ratio.
func Fig11() (Report, error) {
	_, aorta, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	s, err := solverFor(aorta)
	if err != nil {
		return Report{}, err
	}
	access := lbm.HarveyAccess()
	systems := []*machine.System{machine.NewTRC(), machine.NewCSP2(), machine.NewCSP2EC()}
	d, err := dashboard.Build(systems, streamSamples, newRNG())
	if err != nil {
		return Report{}, err
	}
	// Tune the z and event laws on the aorta decomposition, with node
	// width from the largest node among the compared systems.
	coresPerNode := 0
	for _, sys := range systems {
		if sys.CoresPerNode > coresPerNode {
			coresPerNode = sys.CoresPerNode
		}
	}
	g, err := perfmodel.CalibrateGeneral(s, access, []int{1, 2, 4, 8, 16, 32, 64, 128, 256}, coresPerNode)
	if err != nil {
		return Report{}, err
	}
	// Figure 11 rates a production-resolution aorta on 2048 cores. Scale
	// the summary to that resolution; the dimensionless z and event laws
	// calibrated on the benchmark mesh carry over.
	ws := perfmodel.WorkloadSummary{
		Name:        "aorta-hires",
		Points:      s.N() * HighResolutionFactor,
		BytesSerial: s.BytesSerial(access) * HighResolutionFactor,
	}
	const ranks = 2048
	as, err := d.Assess(ws, g, ranks, benchSteps)
	if err != nil {
		return Report{}, err
	}
	m := dashboard.RelativeValue(as)
	series := map[string][]Point{}
	for i := range as {
		for j := range as {
			key := fmt.Sprintf("%s/%s", as[i].System, as[j].System)
			series[key] = []Point{{X: 0, Y: m[i][j]}}
		}
	}
	text := fmt.Sprintf("Relative value r_B,A — HARVEY aorta, %d cores (generalized model)\n\n%s\n%s",
		ranks, dashboard.RenderHeatmap(as, m), dashboard.RenderAssessments(as))
	return Report{
		ID:     "fig11",
		Title:  "Figure 11: relative-value heatmap, aorta at 2048 cores",
		Text:   text,
		Series: series,
	}, nil
}

// All runs every experiment in the paper's order.
func All() ([]Report, error) {
	reports := []Report{Table1()}
	for _, f := range []func() (Report, error){
		Fig3, Fig4, Fig5, Table2, Fig6, Table3, Table4, Fig7, Fig8, Fig9, Fig10, Fig11,
	} {
		r, err := f()
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}
