package experiments

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

// benchSteps is the timestep count per simulated measurement; MFLUPS is
// timestep-invariant (Eq. 7), so a short run suffices.
const benchSteps = 50

// Fig3 regenerates the HARVEY strong-scaling study (Figure 3): MFLUPS over
// MPI ranks for each Figure 2 geometry on every system. Series are keyed
// "<system>/<geometry>".
func Fig3() (Report, error) {
	cyl, aorta, cerebral, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	rng := newRNG()
	access := lbm.HarveyAccess()
	series := map[string][]Point{}
	for _, dom := range []*geometry.Domain{cyl, aorta, cerebral} {
		for _, sys := range machine.Catalog() {
			key := fmt.Sprintf("%s/%s", sys.Abbrev, dom.Name)
			for _, ranks := range rankSweep(sys) {
				w, _, err := cache.workload(dom, ranks, access, "harvey")
				if err != nil {
					return Report{}, err
				}
				res, err := simcloud.Run(w, sys, benchSteps, rng)
				if err != nil {
					return Report{}, err
				}
				series[key] = append(series[key], Point{X: float64(ranks), Y: res.MFLUPS})
			}
		}
	}
	return Report{
		ID:     "fig3",
		Title:  "Figure 3: HARVEY strong scaling per geometry and system",
		Text:   renderSeries(series, "ranks", "MFLUPS"),
		Series: series,
	}, nil
}

// Fig4 regenerates the proxy-app strong scaling (Figure 4): the AA and AB
// propagation patterns in the AOS layout and the unrolled SOA layout on
// every system. Series are keyed "<system>/<kernel>" with kernel labels
// like "SOA-AA-unrolled".
func Fig4() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	rng := newRNG()
	kernels := []lbm.KernelConfig{
		{Layout: lbm.AOS, Pattern: lbm.AA},
		{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true},
		{Layout: lbm.AOS, Pattern: lbm.AB},
		{Layout: lbm.SOA, Pattern: lbm.AB, Unrolled: true},
	}
	series := map[string][]Point{}
	for _, cfg := range kernels {
		access := lbm.ProxyAccess(cfg)
		for _, sys := range machine.Catalog() {
			key := fmt.Sprintf("%s/%v", sys.Abbrev, cfg)
			for _, ranks := range rankSweep(sys) {
				w, _, err := cache.workload(cyl, ranks, access, cfg.String())
				if err != nil {
					return Report{}, err
				}
				res, err := simcloud.Run(w, sys, benchSteps, rng)
				if err != nil {
					return Report{}, err
				}
				series[key] = append(series[key], Point{X: float64(ranks), Y: res.MFLUPS})
			}
		}
	}
	return Report{
		ID:     "fig4",
		Title:  "Figure 4: lbm-proxy-app strong scaling, AA vs AB, AOS vs unrolled SOA",
		Text:   renderSeries(series, "ranks", "MFLUPS"),
		Series: series,
	}, nil
}
