// Package experiments regenerates every table and figure of the paper's
// evaluation section from this reproduction's substrates. Each experiment
// returns a Report containing the rendered artifact plus the structured
// series behind it, so the command-line driver prints them and the
// benchmark harness asserts on their shape. Absolute values differ from
// the paper (the testbed is a calibrated simulator, not the authors'
// clusters); orderings, crossovers and curve shapes are the reproduction
// targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

// Report is one regenerated artifact.
type Report struct {
	ID    string // e.g. "table1", "fig3"
	Title string
	Text  string // rendered artifact

	// Series holds the numbers behind the artifact, keyed by a label such
	// as "TRC/cylinder"; each series is a list of (x, y) points.
	Series map[string][]Point
}

// Point is one (x, y) observation in a report series.
type Point struct {
	X float64
	Y float64
}

// seriesValue returns the y value at x in a series, or an error.
func (r Report) seriesValue(key string, x float64) (float64, error) {
	s, ok := r.Series[key]
	if !ok {
		return 0, fmt.Errorf("experiments: report %s has no series %q", r.ID, key)
	}
	for _, p := range s {
		//lint:ignore floateq series X values are stored verbatim and looked up verbatim
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("experiments: series %q has no point at x=%g", key, x)
}

// Geometries builds the three Figure 2 anatomies at benchmark scale. The
// sizes are chosen so decompositions up to 128 ranks keep thousands of
// points per task (the regime the paper measures) while every experiment
// finishes in seconds. The paper's production meshes are finer still;
// Figure 11 extrapolates to that resolution via HighResolutionFactor.
func Geometries() (cylinder, aorta, cerebral *geometry.Domain, err error) {
	cylinder, err = geometry.Cylinder(160, 20)
	if err != nil {
		return nil, nil, nil, err
	}
	aorta, err = geometry.Aorta(12)
	if err != nil {
		return nil, nil, nil, err
	}
	cerebral, err = geometry.Cerebral(4, 4)
	if err != nil {
		return nil, nil, nil, err
	}
	return cylinder, aorta, cerebral, nil
}

// HighResolutionFactor scales a benchmark-size anatomy to the paper's
// production resolution (a 2048-core workload): 8x finer in each spatial
// dimension, so 512x the fluid points and serial bytes. Only the scalar
// workload summary scales — the z and event laws are dimensionless in the
// task count and transfer unchanged, which is precisely the generalized
// model's purpose: predicting runs too large to stage.
const HighResolutionFactor = 512

// solverFor builds the HARVEY engine over a domain with the standard
// benchmark parameters (steady bulk flow).
func solverFor(dom *geometry.Domain) (*lbm.Sparse, error) {
	return lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.02})
}

// workloadCache memoizes decompositions, which dominate experiment cost.
type workloadCache struct {
	solvers map[string]*lbm.Sparse
	parts   map[string]*decomp.Partition
}

func newWorkloadCache() *workloadCache {
	return &workloadCache{
		solvers: make(map[string]*lbm.Sparse),
		parts:   make(map[string]*decomp.Partition),
	}
}

// solver returns (building once) the solver for a named domain.
func (c *workloadCache) solver(dom *geometry.Domain) (*lbm.Sparse, error) {
	if s, ok := c.solvers[dom.Name]; ok {
		return s, nil
	}
	s, err := solverFor(dom)
	if err != nil {
		return nil, err
	}
	c.solvers[dom.Name] = s
	return s, nil
}

// workload returns (building once) the decomposed workload for a domain,
// rank count and access model.
func (c *workloadCache) workload(dom *geometry.Domain, ranks int, m lbm.AccessModel, tag string) (simcloud.Workload, *lbm.Sparse, error) {
	s, err := c.solver(dom)
	if err != nil {
		return simcloud.Workload{}, nil, err
	}
	key := fmt.Sprintf("%s/%d/%s", dom.Name, ranks, tag)
	p, ok := c.parts[key]
	if !ok {
		p, err = decomp.RCB(s, ranks, m)
		if err != nil {
			return simcloud.Workload{}, nil, err
		}
		c.parts[key] = p
	}
	return simcloud.FromPartition(dom.Name, s.N(), p), s, nil
}

// rankSweep returns the strong-scaling rank counts for a system, powers of
// two up to its core count (and at most 128, this reproduction's largest
// tested scale, matching the noise study's upper end).
func rankSweep(sys *machine.System) []int {
	var ranks []int
	for r := 2; r <= sys.MaxRanks() && r <= 128; r *= 2 {
		ranks = append(ranks, r)
	}
	return ranks
}

// renderSeries renders a report's series as aligned text columns, one
// block per series, sorted by label for stable output.
func renderSeries(series map[string][]Point, xLabel, yLabel string) string {
	labels := make([]string, 0, len(series))
	for k := range series {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, label := range labels {
		fmt.Fprintf(&b, "%s\n", label)
		fmt.Fprintf(&b, "  %12s %14s\n", xLabel, yLabel)
		for _, p := range series[label] {
			fmt.Fprintf(&b, "  %12.6g %14.6g\n", p.X, p.Y)
		}
	}
	return b.String()
}

// newRNG returns the deterministic noise source experiments share.
func newRNG() *rand.Rand { return rand.New(rand.NewSource(2023)) }
