package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/mbench"
)

// streamSamples is the per-point averaging used when characterizing
// systems with noise, matching repeated STREAM trials.
const streamSamples = 5

// Fig5 regenerates the STREAM bandwidth study (Figure 5): noisy Copy
// sweeps over OpenMP thread counts for every system plus the
// hyperthreaded CSP-2 instance, each with its Eq. 8 two-line fit. Series:
// "<system>/measured" and "<system>/fit" (plus "CSP-2 Hyp./..." rows).
func Fig5() (Report, error) {
	rng := newRNG()
	series := map[string][]Point{}
	var text strings.Builder

	sweep := func(label string, sys *machine.System, hyper bool) error {
		pts := mbench.StreamSweepSim(sys, hyper, streamSamples, rng)
		f, err := mbench.FitStream(pts)
		if err != nil {
			return fmt.Errorf("experiments: fig5 fit for %s: %w", label, err)
		}
		for _, p := range pts {
			series[label+"/measured"] = append(series[label+"/measured"],
				Point{X: float64(p.Threads), Y: p.BandwidthMBps})
			series[label+"/fit"] = append(series[label+"/fit"],
				Point{X: float64(p.Threads), Y: f.Eval(float64(p.Threads))})
		}
		fmt.Fprintf(&text, "%-12s %s\n", label, f)
		return nil
	}
	for _, sys := range machine.Catalog() {
		if err := sweep(sys.Abbrev, sys, false); err != nil {
			return Report{}, err
		}
	}
	if err := sweep("CSP-2 Hyp.", machine.NewCSP2(), true); err != nil {
		return Report{}, err
	}
	text.WriteString("\n")
	text.WriteString(renderSeries(series, "threads", "MB/s"))
	return Report{
		ID:     "fig5",
		Title:  "Figure 5: STREAM Copy bandwidth vs thread count with two-line fits",
		Text:   text.String(),
		Series: series,
	}, nil
}

// Table2 regenerates the published-vs-STREAM bandwidth comparison
// (Table II): the two-line fit's saturated bandwidth at full thread count
// against the vendor-published maximum, with the percentage difference.
func Table2() (Report, error) {
	rng := newRNG()
	var b strings.Builder
	series := map[string][]Point{}
	fmt.Fprintf(&b, "%-14s %16s %16s %12s\n", "System", "Published (MB/s)", "STREAM (MB/s)", "Difference")
	for _, sys := range []*machine.System{machine.NewTRC(), machine.NewCSP1(), machine.NewCSP2(), machine.NewCSP2EC()} {
		pts := mbench.StreamSweepSim(sys, false, streamSamples, rng)
		f, err := mbench.FitStream(pts)
		if err != nil {
			return Report{}, err
		}
		measured := f.Eval(float64(sys.CoresPerNode))
		diff := (measured - sys.PublishedMemBWMBps) / sys.PublishedMemBWMBps * 100
		fmt.Fprintf(&b, "%-14s %16.0f %16.0f %+11.2f%%\n",
			sys.Abbrev, sys.PublishedMemBWMBps, measured, diff)
		series[sys.Abbrev] = []Point{
			{X: sys.PublishedMemBWMBps, Y: measured},
		}
	}
	return Report{
		ID:     "table2",
		Title:  "Table II: STREAM-fit sustainable bandwidth vs published maximum",
		Text:   b.String(),
		Series: series,
	}, nil
}

// Fig6 regenerates the PingPong study (Figure 6): measured message times
// over the IMB size sweep with Eq. 12 linear fits, for the systems whose
// interconnects the paper compares. Series: "<system>/measured" and
// "<system>/fit".
func Fig6() (Report, error) {
	rng := newRNG()
	series := map[string][]Point{}
	var text strings.Builder
	for _, sys := range []*machine.System{machine.NewTRC(), machine.NewCSP2(), machine.NewCSP2EC()} {
		pts := mbench.PingPongSweepSim(sys, false, mbench.DefaultMessageSizes(), streamSamples, rng)
		link, line, err := mbench.FitPingPong(pts)
		if err != nil {
			return Report{}, err
		}
		for _, p := range pts {
			series[sys.Abbrev+"/measured"] = append(series[sys.Abbrev+"/measured"], Point{X: p.Bytes, Y: p.TimeUS})
			series[sys.Abbrev+"/fit"] = append(series[sys.Abbrev+"/fit"], Point{X: p.Bytes, Y: line.Eval(p.Bytes)})
		}
		fmt.Fprintf(&text, "%-10s b = %8.2f MB/s   l = %6.2f µs   (R²=%.4f)\n",
			sys.Abbrev, link.BandwidthMBps, link.LatencyUS, line.R2)
	}
	return Report{
		ID:     "fig6",
		Title:  "Figure 6: PingPong timings with linear communication-model fits",
		Text:   text.String() + "\n" + renderSeries(series, "bytes", "µs"),
		Series: series,
	}, nil
}

// Table3 regenerates the microbenchmark fit-parameter table (Table III):
// two-line memory parameters for every system (including hyperthreaded
// CSP-2) and inter-node communication parameters where multi-node
// PingPong applies.
func Table3() (Report, error) {
	rng := newRNG()
	var b strings.Builder
	series := map[string][]Point{}
	fmt.Fprintf(&b, "%-12s %10s %10s %7s %10s %8s %6s\n",
		"System", "a1", "a2", "a3", "b_inter", "l_inter", "Cores")

	type rowSpec struct {
		label string
		sys   *machine.System
		hyper bool
		comm  bool
	}
	rows := []rowSpec{
		{"TRC", machine.NewTRC(), false, true},
		{"CSP-2", machine.NewCSP2(), false, true},
		{"CSP-2 EC", machine.NewCSP2EC(), false, true},
		{"CSP-2 Hyp.", machine.NewCSP2(), true, false},
		{"CSP-1", machine.NewCSP1(), false, false},
	}
	var uncertainty strings.Builder
	for _, r := range rows {
		pts := mbench.StreamSweepSim(r.sys, r.hyper, streamSamples, rng)
		mem, err := mbench.FitStream(pts)
		if err != nil {
			return Report{}, err
		}
		// Bootstrap error bars on the two-line parameters.
		ths := make([]float64, len(pts))
		bws := make([]float64, len(pts))
		for i, p := range pts {
			ths[i] = float64(p.Threads)
			bws[i] = p.BandwidthMBps
		}
		if u, err := fit.BootstrapTwoLine(ths, bws, 80, rng); err == nil {
			fmt.Fprintf(&uncertainty, "%-12s a1 = %-16s a2 = %-16s a3 = %s\n",
				r.label, u.A1.String(), u.A2.String(), u.A3.String())
		}
		commStr := [2]string{"N/A", "N/A"}
		var linkPts []Point
		if r.comm {
			pp := mbench.PingPongSweepSim(r.sys, false, mbench.DefaultMessageSizes(), streamSamples, rng)
			link, _, err := mbench.FitPingPong(pp)
			if err != nil {
				return Report{}, err
			}
			commStr[0] = fmt.Sprintf("%.2f", link.BandwidthMBps)
			commStr[1] = fmt.Sprintf("%.2f", link.LatencyUS)
			linkPts = []Point{{X: link.BandwidthMBps, Y: link.LatencyUS}}
		}
		cores := r.sys.CoresPerNode
		coresLabel := fmt.Sprintf("%d", cores)
		if r.hyper {
			cores *= r.sys.VCPUsPerCore
			coresLabel = fmt.Sprintf("%d*", cores)
		}
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %7.2f %10s %8s %6s\n",
			r.label, mem.A1, mem.A2, mem.A3, commStr[0], commStr[1], coresLabel)
		series[r.label] = append([]Point{{X: mem.A1, Y: mem.A3}}, linkPts...)
	}
	text := b.String() + "\nbootstrap parameter uncertainty (mean ± stderr, 80 resamples):\n" + uncertainty.String()
	return Report{
		ID:     "table3",
		Title:  "Table III: microbenchmark curve-fit parameters (Eqs. 8 and 12)",
		Text:   text,
		Series: series,
	}, nil
}
