package experiments

import (
	"strings"
	"testing"
)

func TestExtGPUShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates GPU study")
	}
	r := report(t, "ext-gpu", ExtGPU)
	// One GPU node outruns one CPU node by a large factor on memory-bound
	// work.
	gpu1 := value(t, r, "CSP-2 GPU/actual", 1)
	cpu1 := value(t, r, "CSP-2/actual", 1)
	if gpu1 < 3*cpu1 {
		t.Errorf("GPU node (%v) not well above CPU node (%v)", gpu1, cpu1)
	}
	// The direct model with the t_CPU-GPU term tracks the simulated truth.
	for nodes := 1.0; nodes <= 4; nodes++ {
		a := value(t, r, "CSP-2 GPU/actual", nodes)
		d := value(t, r, "CSP-2 GPU/direct", nodes)
		if ratio := d / a; ratio < 0.5 || ratio > 2 {
			t.Errorf("nodes=%v: GPU prediction %v vs actual %v", nodes, d, a)
		}
	}
	if !strings.Contains(r.Text, "t_CPU-GPU") {
		t.Error("report does not surface the t_CPU-GPU term")
	}
}

func TestExtSharedNodeMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates shared-node study")
	}
	r := report(t, "ext-shared", ExtSharedNode)
	for _, kind := range []string{"actual", "direct"} {
		s := r.Series[kind]
		if len(s) != 5 {
			t.Fatalf("%s sweep has %d points, want 5", kind, len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i].Y >= s[i-1].Y {
				t.Errorf("%s not monotone at occupancy %v: %v >= %v", kind, s[i].X, s[i].Y, s[i-1].Y)
			}
		}
	}
	// The occupancy-aware model tracks the simulated truth at every
	// occupancy level.
	for i, a := range r.Series["actual"] {
		d := r.Series["direct"][i]
		if ratio := d.Y / a.Y; ratio < 0.5 || ratio > 2 {
			t.Errorf("occupancy %v: model %v vs actual %v", a.X, d.Y, a.Y)
		}
	}
}

func TestExtTermSelectionImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates term-selection study")
	}
	r := report(t, "ext-terms", ExtTermSelection)
	base := value(t, r, "mape", 0)
	final := value(t, r, "mape", 1)
	if final >= base {
		t.Errorf("feedback loop did not improve accuracy: %v -> %v", base, final)
	}
	if !strings.Contains(r.Text, "kernel-overhead") {
		t.Error("overhead term not kept")
	}
	if !strings.Contains(r.Text, "flops") || !strings.Contains(strings.Split(r.Text, "rejected:")[1], "flops") {
		t.Error("flops term not rejected")
	}
}

func TestExtConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs steady-state convergence sweeps")
	}
	r := report(t, "ext-convergence", ExtConvergence)
	s := r.Series["viscosity-error"]
	if len(s) != 3 {
		t.Fatalf("sweep has %d points, want 3", len(s))
	}
	// Error shrinks from coarsest to finest resolution, and the finest is
	// comfortably inside the solver's validated tolerance.
	if s[len(s)-1].Y >= s[0].Y {
		t.Errorf("no convergence: error %v at r=%v vs %v at r=%v",
			s[len(s)-1].Y, s[len(s)-1].X, s[0].Y, s[0].X)
	}
	if s[len(s)-1].Y > 0.02 {
		t.Errorf("finest-grid viscosity error %v above 2%%", s[len(s)-1].Y)
	}
}

func TestExtWeakScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs weak-scaling sweeps")
	}
	r := report(t, "ext-weak", ExtWeakScaling)
	for _, sys := range []string{"CSP-2", "CSP-2 EC"} {
		eff := r.Series[sys+"/efficiency"]
		if len(eff) != 8 {
			t.Fatalf("%s efficiency sweep has %d points", sys, len(eff))
		}
		if eff[0].Y != 1 {
			t.Errorf("%s: base efficiency %v, want 1", sys, eff[0].Y)
		}
		// Within one node efficiency stays high; multi-node pays for the
		// interconnect.
		if v := value(t, r, sys+"/efficiency", 9); v < 0.8 {
			t.Errorf("%s: single-node efficiency %v below 0.8", sys, v)
		}
		if v := value(t, r, sys+"/efficiency", 144); v > 0.8 {
			t.Errorf("%s: 4-node efficiency %v suspiciously high", sys, v)
		}
		// Throughput still grows with the machine (weak scaling works).
		if value(t, r, sys+"/mflups", 144) < 10*value(t, r, sys+"/mflups", 1) {
			t.Errorf("%s: weak-scaled throughput did not grow", sys)
		}
	}
	// EC holds efficiency better once nodes multiply.
	if value(t, r, "CSP-2 EC/efficiency", 144) <= value(t, r, "CSP-2/efficiency", 144) {
		t.Error("EC not above no-EC at 4-node weak scaling")
	}
}

func TestExtPulsatile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs pulsatile cycles")
	}
	r := report(t, "ext-pulsatile", ExtPulsatile)
	steady := value(t, r, "osi", 0)
	puls := value(t, r, "osi", 1)
	if steady > 0.05 {
		t.Errorf("steady OSI %v, want near zero", steady)
	}
	if puls <= steady+0.05 {
		t.Errorf("pulsatile OSI %v not elevated over steady %v", puls, steady)
	}
	if value(t, r, "peak-wss", 0) <= 0 || value(t, r, "peak-wss", 1) <= 0 {
		t.Error("peak WSS missing")
	}
}
