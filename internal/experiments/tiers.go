package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/simcloud"
)

// This file is the tiered-prediction evaluation (DESIGN.md §13): it
// generates the committed Tier 2 lookup tables from simulated-measured
// runs and scores all three tiers against fresh measurements over the
// Table-I suite. Two independent seeds keep the exercise honest — the
// table is harvested with tableGenSeed, the evaluation measures with
// tierEvalSeed, so Tier 2's error is real run-to-run noise rather than
// a self-comparison.
const (
	tableGenSeed  = 7001
	tierEvalSeed  = 2024
	tableSamples  = 5 // runs averaged per committed table row
	tierEvalRuns  = 5 // runs averaged per evaluation measurement
	tierEvalSteps = benchSteps
)

// BiasAnomalyPct is the residual-bias anomaly threshold: a tier whose
// signed mean relative error on one system exceeds this magnitude is
// reported as systematically biased in that regime (e.g. Tier 1's
// kernel-overhead overprediction), not merely noisy.
const BiasAnomalyPct = 10.0

// tierConfig is one (system, geometry, ranks) cell of the Table-I suite.
type tierConfig struct {
	sys   *machine.System
	dom   *geometry.Domain
	ranks int
}

// tierSuite enumerates the evaluation grid: every catalog system, every
// Figure-2 geometry, rank 1 plus the standard strong-scaling sweep.
func tierSuite() ([]tierConfig, error) {
	cyl, aorta, cerebral, err := Geometries()
	if err != nil {
		return nil, err
	}
	var cfgs []tierConfig
	for _, sys := range machine.Catalog() {
		for _, dom := range []*geometry.Domain{cyl, aorta, cerebral} {
			for _, ranks := range append([]int{1}, rankSweep(sys)...) {
				cfgs = append(cfgs, tierConfig{sys: sys, dom: dom, ranks: ranks})
			}
		}
	}
	return cfgs, nil
}

// measure averages runs simulated executions of w on sys.
func measure(w simcloud.Workload, sys *machine.System, runs int, rng *rand.Rand) (float64, error) {
	var sum float64
	for i := 0; i < runs; i++ {
		res, err := simcloud.Run(w, sys, tierEvalSteps, rng)
		if err != nil {
			return 0, err
		}
		sum += res.MFLUPS
	}
	return sum / float64(runs), nil
}

// GenerateTable measures the whole Table-I suite and writes the Tier 2
// lookup CSV (schema: system,kernel,points,ranks,mflups; sorted by that
// key) to w. This is the regeneration workflow behind the committed
// internal/perfmodel/tables/measured.csv: `cmd/experiments -gen-tables`.
func GenerateTable(w io.Writer) error {
	cfgs, err := tierSuite()
	if err != nil {
		return err
	}
	cache := newWorkloadCache()
	rng := rand.New(rand.NewSource(tableGenSeed))
	access := lbm.HarveyAccess()
	var rows []perfmodel.TableRow
	for _, cfg := range cfgs {
		wl, _, err := cache.workload(cfg.dom, cfg.ranks, access, "harvey")
		if err != nil {
			return err
		}
		mflups, err := measure(wl, cfg.sys, tableSamples, rng)
		if err != nil {
			return err
		}
		rows = append(rows, perfmodel.TableRow{
			System: cfg.sys.Abbrev, Kernel: perfmodel.DefaultKernel,
			Points: wl.Points, Ranks: cfg.ranks, MFLUPS: mflups,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.System != b.System {
			return a.System < b.System
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Points != b.Points {
			return a.Points < b.Points
		}
		return a.Ranks < b.Ranks
	})
	if _, err := fmt.Fprintln(w, "system,kernel,points,ranks,mflups"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.6g\n", r.System, r.Kernel, r.Points, r.Ranks, r.MFLUPS); err != nil {
			return err
		}
	}
	return nil
}

// SystemStats is one tier's error profile on one system.
type SystemStats struct {
	MAPEPct float64 `json:"mape_pct"` // mean |pred-actual|/actual, percent
	BiasPct float64 `json:"bias_pct"` // mean signed (pred-actual)/actual, percent
	N       int     `json:"n"`
}

// TierStats aggregates a tier's error over the whole suite.
type TierStats struct {
	MAPEPct  float64                `json:"mape_pct"`
	BiasPct  float64                `json:"bias_pct"`
	N        int                    `json:"n"`
	BySystem map[string]SystemStats `json:"by_system"`
}

// TierBench is the machine-readable result behind BENCH_tiers.json; CI
// gates Tier 1 MAPE regressions against the committed copy.
type TierBench struct {
	Tiers map[string]TierStats `json:"tiers"`
	// OrderingOK asserts the acceptance property: on in-table systems,
	// Tier 2 MAPE ≤ Tier 1 MAPE ≤ Tier 0 MAPE.
	OrderingOK bool `json:"ordering_ok"`
	// Anomalies lists systematic residual biases exceeding
	// BiasAnomalyPct, formatted "tier/system: +12.3% (overprediction)".
	Anomalies []string `json:"anomalies"`
}

type residual struct {
	system string
	rel    float64 // signed (pred-actual)/actual
}

func summarize(rs []residual) TierStats {
	st := TierStats{BySystem: map[string]SystemStats{}}
	bySys := map[string][]float64{}
	for _, r := range rs {
		bySys[r.system] = append(bySys[r.system], r.rel)
	}
	var allAbs, allSigned float64
	for sys, rels := range bySys {
		var sumAbs, sumSigned float64
		for _, rel := range rels {
			sumAbs += math.Abs(rel)
			sumSigned += rel
		}
		st.BySystem[sys] = SystemStats{
			MAPEPct: 100 * sumAbs / float64(len(rels)),
			BiasPct: 100 * sumSigned / float64(len(rels)),
			N:       len(rels),
		}
		allAbs += sumAbs
		allSigned += sumSigned
	}
	st.N = len(rs)
	if st.N > 0 {
		st.MAPEPct = 100 * allAbs / float64(st.N)
		st.BiasPct = 100 * allSigned / float64(st.N)
	}
	return st
}

// Tiers scores the three prediction tiers against fresh simulated
// measurements over the Table-I suite. tbl supplies Tier 2 data (nil
// evaluates only the analytical tiers). The report carries per-tier,
// per-system MAPE and signed bias plus residual-bias anomaly lines.
func Tiers(tbl *perfmodel.Table) (Report, *TierBench, error) {
	cfgs, err := tierSuite()
	if err != nil {
		return Report{}, nil, err
	}
	cache := newWorkloadCache()
	access := lbm.HarveyAccess()
	evalRNG := rand.New(rand.NewSource(tierEvalSeed))

	tiers := []string{perfmodel.Tier0Physics, perfmodel.Tier1Calibrated}
	if tbl != nil {
		tiers = append(tiers, perfmodel.Tier2Measured)
	}
	resids := map[string][]residual{}

	predictors := map[string]*perfmodel.Predictor{}
	for _, sys := range machine.Catalog() {
		char, err := perfmodel.Characterize(sys, streamSamples, newRNG())
		if err != nil {
			return Report{}, nil, err
		}
		backends := []perfmodel.Backend{
			perfmodel.NewPhysicsBackend(sys),
			perfmodel.NewCalibratedBackend(char),
		}
		if tbl != nil {
			backends = append(backends, perfmodel.NewLookupBackend(sys.Abbrev, tbl))
		}
		p, err := perfmodel.NewPredictor(backends...)
		if err != nil {
			return Report{}, nil, err
		}
		predictors[sys.Abbrev] = p
	}

	series := map[string][]Point{}
	for _, cfg := range cfgs {
		wl, _, err := cache.workload(cfg.dom, cfg.ranks, access, "harvey")
		if err != nil {
			return Report{}, nil, err
		}
		actual, err := measure(wl, cfg.sys, tierEvalRuns, evalRNG)
		if err != nil {
			return Report{}, nil, err
		}
		for _, tier := range tiers {
			pred, err := predictors[cfg.sys.Abbrev].Predict(perfmodel.Request{
				Model: perfmodel.ModelDirect, Workload: &wl, Tier: tier,
			})
			if err != nil {
				return Report{}, nil, fmt.Errorf("%s on %s/%s/%d: %w", tier, cfg.sys.Abbrev, cfg.dom.Name, cfg.ranks, err)
			}
			rel := (pred.MFLUPS - actual) / actual
			resids[tier] = append(resids[tier], residual{system: cfg.sys.Abbrev, rel: rel})
			series[tier+"/"+cfg.sys.Abbrev] = append(series[tier+"/"+cfg.sys.Abbrev],
				Point{X: float64(cfg.ranks), Y: 100 * math.Abs(rel)})
		}
	}

	bench := &TierBench{Tiers: map[string]TierStats{}}
	for _, tier := range tiers {
		bench.Tiers[tier] = summarize(resids[tier])
	}
	bench.OrderingOK = orderingOK(bench.Tiers)
	for _, tier := range tiers {
		systems := make([]string, 0, len(bench.Tiers[tier].BySystem))
		for sys := range bench.Tiers[tier].BySystem {
			systems = append(systems, sys)
		}
		sort.Strings(systems)
		for _, sys := range systems {
			st := bench.Tiers[tier].BySystem[sys]
			if math.Abs(st.BiasPct) > BiasAnomalyPct {
				dir := "overprediction"
				if st.BiasPct < 0 {
					dir = "underprediction"
				}
				bench.Anomalies = append(bench.Anomalies,
					fmt.Sprintf("%s/%s: %+.1f%% (systematic %s)", tier, sys, st.BiasPct, dir))
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %6s\n", "tier", "MAPE (%)", "bias (%)", "n")
	for _, tier := range tiers {
		st := bench.Tiers[tier]
		fmt.Fprintf(&b, "%-8s %10.2f %10.2f %6d\n", tier, st.MAPEPct, st.BiasPct, st.N)
	}
	b.WriteString("\nper-system breakdown\n")
	for _, tier := range tiers {
		st := bench.Tiers[tier]
		systems := make([]string, 0, len(st.BySystem))
		for sys := range st.BySystem {
			systems = append(systems, sys)
		}
		sort.Strings(systems)
		for _, sys := range systems {
			ss := st.BySystem[sys]
			fmt.Fprintf(&b, "  %-8s %-12s MAPE %7.2f%%  bias %+7.2f%%  n=%d\n", tier, sys, ss.MAPEPct, ss.BiasPct, ss.N)
		}
	}
	if len(bench.Anomalies) > 0 {
		b.WriteString("\nresidual-bias anomalies (|bias| > " + fmt.Sprintf("%.0f", BiasAnomalyPct) + "%)\n")
		for _, a := range bench.Anomalies {
			b.WriteString("  " + a + "\n")
		}
	}
	fmt.Fprintf(&b, "\naccuracy ordering tier2 <= tier1 <= tier0: %v\n", bench.OrderingOK)

	return Report{
		ID:     "tiers",
		Title:  "Tiered prediction: per-tier MAPE over the Table-I suite",
		Text:   b.String(),
		Series: series,
	}, bench, nil
}

// orderingOK checks Tier 2 ≤ Tier 1 ≤ Tier 0 on overall MAPE, skipping
// tiers that were not evaluated.
func orderingOK(tiers map[string]TierStats) bool {
	t0, ok0 := tiers[perfmodel.Tier0Physics]
	t1, ok1 := tiers[perfmodel.Tier1Calibrated]
	t2, ok2 := tiers[perfmodel.Tier2Measured]
	if ok1 && ok0 && t1.MAPEPct > t0.MAPEPct {
		return false
	}
	if ok2 && ok1 && t2.MAPEPct > t1.MAPEPct {
		return false
	}
	return true
}
