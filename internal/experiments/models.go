package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fit"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/simcloud"
)

// Table4 regenerates the noise-variability study (Table IV): HARVEY on
// the aorta measured every 6 hours for 7 days (28 samples) on CSP-1 and
// CSP-2 Small over the paper's rank counts; mean MFLUPS, standard
// deviation and coefficient of variation per configuration.
func Table4() (Report, error) {
	_, aorta, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	rng := newRNG()
	access := lbm.HarveyAccess()
	const samples = 28 // 7 days at 6-hour intervals

	type cfg struct {
		sys   *machine.System
		ranks []int
	}
	cfgs := []cfg{
		{machine.NewCSP1(), []int{16, 32, 48}},
		{machine.NewCSP2Small(), []int{16, 32, 64, 128}},
	}
	var b strings.Builder
	series := map[string][]Point{}
	fmt.Fprintf(&b, "%-14s %10s %13s %20s %22s\n",
		"System", "MPI Ranks", "Mean MFLUPS", "Standard Deviation", "Variation Coefficient")
	for _, c := range cfgs {
		for _, ranks := range c.ranks {
			w, _, err := cache.workload(aorta, ranks, access, "harvey")
			if err != nil {
				return Report{}, err
			}
			var obs []float64
			for i := 0; i < samples; i++ {
				res, err := simcloud.Run(w, c.sys, benchSteps, rng)
				if err != nil {
					return Report{}, err
				}
				obs = append(obs, res.MFLUPS)
			}
			s := fit.Summarize(obs)
			fmt.Fprintf(&b, "%-14s %10d %13.2f %20.2f %22.3f\n",
				c.sys.Abbrev, ranks, s.Mean, s.StdDev, s.CV)
			key := c.sys.Abbrev
			series[key+"/mean"] = append(series[key+"/mean"], Point{X: float64(ranks), Y: s.Mean})
			series[key+"/cv"] = append(series[key+"/cv"], Point{X: float64(ranks), Y: s.CV})
		}
	}
	return Report{
		ID:     "table4",
		Title:  "Table IV: HARVEY aorta performance statistics, 6-hour samples over 7 days",
		Text:   b.String(),
		Series: series,
	}, nil
}

// csp2Characterization characterizes CSP-2 (the model-evaluation system of
// Figures 7-10) with noisy microbenchmarks.
func csp2Characterization() (*perfmodel.Characterization, *machine.System, error) {
	sys := machine.NewCSP2()
	c, err := perfmodel.Characterize(sys, streamSamples, newRNG())
	return c, sys, err
}

// modelSweep produces the "actual" (simulated), direct-model and
// generalized-model MFLUPS series for one workload on CSP-2.
func modelSweep(cache *workloadCache, dom *geometry.Domain, access lbm.AccessModel, tag string,
	c *perfmodel.Characterization, sys *machine.System, series map[string][]Point, label string) error {

	s, err := cache.solver(dom)
	if err != nil {
		return err
	}
	g, err := perfmodel.CalibrateGeneral(s, access, []int{1, 2, 4, 8, 16, 32, 64, 128}, sys.CoresPerNode)
	if err != nil {
		return err
	}
	ws := perfmodel.WorkloadSummary{Name: label, Points: s.N(), BytesSerial: s.BytesSerial(access)}
	rng := newRNG()
	for _, ranks := range rankSweep(sys) {
		w, _, err := cache.workload(dom, ranks, access, tag)
		if err != nil {
			return err
		}
		actual, err := simcloud.Run(w, sys, benchSteps, rng)
		if err != nil {
			return err
		}
		direct, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelDirect, Workload: &w})
		if err != nil {
			return err
		}
		general, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: ranks})
		if err != nil {
			return err
		}
		x := float64(ranks)
		series[label+"/actual"] = append(series[label+"/actual"], Point{X: x, Y: actual.MFLUPS})
		series[label+"/direct"] = append(series[label+"/direct"], Point{X: x, Y: direct.MFLUPS})
		series[label+"/generalized"] = append(series[label+"/generalized"], Point{X: x, Y: general.MFLUPS})
	}
	return nil
}

// Fig7 regenerates the HARVEY model-validation study (Figure 7): direct
// and generalized predictions against actual performance for all three
// geometries on CSP-2 (without EC). Series: "<geometry>/<kind>" with kind
// in {actual, direct, generalized}.
func Fig7() (Report, error) {
	cyl, aorta, cerebral, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	c, sys, err := csp2Characterization()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	series := map[string][]Point{}
	access := lbm.HarveyAccess()
	for _, dom := range []*geometry.Domain{cyl, aorta, cerebral} {
		if err := modelSweep(cache, dom, access, "harvey", c, sys, series, dom.Name); err != nil {
			return Report{}, err
		}
	}
	return Report{
		ID:     "fig7",
		Title:  "Figure 7: performance-model predictions vs actual, HARVEY on CSP-2",
		Text:   renderSeries(series, "ranks", "MFLUPS"),
		Series: series,
	}, nil
}

// Fig8 regenerates the proxy-app model-validation study (Figure 8): the
// four SOA kernels (AA/AB, rolled/unrolled) on CSP-2. Series keyed
// "<kernel>/<kind>".
func Fig8() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	c, sys, err := csp2Characterization()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	series := map[string][]Point{}
	for _, cfg := range []lbm.KernelConfig{
		{Layout: lbm.SOA, Pattern: lbm.AA},
		{Layout: lbm.SOA, Pattern: lbm.AB},
		{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true},
		{Layout: lbm.SOA, Pattern: lbm.AB, Unrolled: true},
	} {
		if err := modelSweep(cache, cyl, lbm.ProxyAccess(cfg), cfg.String(), c, sys, series, cfg.String()); err != nil {
			return Report{}, err
		}
	}
	return Report{
		ID:     "fig8",
		Title:  "Figure 8: performance-model predictions vs actual, proxy-app SOA kernels on CSP-2",
		Text:   renderSeries(series, "ranks", "MFLUPS"),
		Series: series,
	}, nil
}

// Fig9 regenerates the direct-model runtime-composition study (Figure 9):
// the gating task's memory, intra-node and inter-node communication time
// per strong-scaling point for the HARVEY cylinder on CSP-2. Series:
// "mem", "intra", "inter" (seconds per timestep).
func Fig9() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	c, sys, err := csp2Characterization()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	access := lbm.HarveyAccess()
	series := map[string][]Point{}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %14s %14s\n", "ranks", "mem (s)", "intra (s)", "inter (s)")
	for _, ranks := range rankSweep(sys) {
		w, _, err := cache.workload(cyl, ranks, access, "harvey")
		if err != nil {
			return Report{}, err
		}
		pred, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelDirect, Workload: &w})
		if err != nil {
			return Report{}, err
		}
		x := float64(ranks)
		series["mem"] = append(series["mem"], Point{X: x, Y: pred.MemS})
		series["intra"] = append(series["intra"], Point{X: x, Y: pred.IntraS})
		series["inter"] = append(series["inter"], Point{X: x, Y: pred.InterS})
		fmt.Fprintf(&b, "%8d %14.6g %14.6g %14.6g\n", ranks, pred.MemS, pred.IntraS, pred.InterS)
	}
	return Report{
		ID:     "fig9",
		Title:  "Figure 9: direct-model runtime composition, HARVEY cylinder on CSP-2",
		Text:   b.String(),
		Series: series,
	}, nil
}

// Fig10 regenerates the generalized-model runtime-composition study
// (Figure 10): memory time and the bandwidth and latency halves of
// Eq. 16 for the HARVEY cylinder on CSP-2. Series: "mem", "comm-bw",
// "comm-latency".
func Fig10() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	c, sys, err := csp2Characterization()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	access := lbm.HarveyAccess()
	s, err := cache.solver(cyl)
	if err != nil {
		return Report{}, err
	}
	g, err := perfmodel.CalibrateGeneral(s, access, []int{1, 2, 4, 8, 16, 32, 64, 128}, sys.CoresPerNode)
	if err != nil {
		return Report{}, err
	}
	ws := perfmodel.WorkloadSummary{Name: cyl.Name, Points: s.N(), BytesSerial: s.BytesSerial(access)}
	series := map[string][]Point{}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %14s %14s\n", "ranks", "mem (s)", "comm-bw (s)", "comm-lat (s)")
	for _, ranks := range rankSweep(sys) {
		pred, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: ranks})
		if err != nil {
			return Report{}, err
		}
		x := float64(ranks)
		series["mem"] = append(series["mem"], Point{X: x, Y: pred.MemS})
		series["comm-bw"] = append(series["comm-bw"], Point{X: x, Y: pred.CommBandwidthS})
		series["comm-latency"] = append(series["comm-latency"], Point{X: x, Y: pred.CommLatencyS})
		fmt.Fprintf(&b, "%8d %14.6g %14.6g %14.6g\n", ranks, pred.MemS, pred.CommBandwidthS, pred.CommLatencyS)
	}
	return Report{
		ID:     "fig10",
		Title:  "Figure 10: generalized-model runtime composition, HARVEY cylinder on CSP-2",
		Text:   b.String(),
		Series: series,
	}, nil
}
