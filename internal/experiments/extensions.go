package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/decomp"
	"repro/internal/fit"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/roofline"
	"repro/internal/simcloud"
)

// The extension studies regenerate results for the parts of the paper's
// full model (Eq. 2) and Discussion that its evaluation section defers:
// GPU execution with the t_CPU-GPU term, shared-node tenancy, and the
// add-and-check model-term feedback loop.

// ExtGPU compares the GPU instance against the CPU instances node-for-
// node on the HARVEY cylinder and validates the direct model's t_CPU-GPU
// term against simulated truth. Series: "<system>/actual" and
// "<system>/direct" over node counts 1..4.
func ExtGPU() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	series := map[string][]Point{}
	var text strings.Builder
	fmt.Fprintf(&text, "%8s %-12s %12s %12s %14s\n", "nodes", "system", "actual", "direct", "t_CPU-GPU (s)")
	for _, sys := range []*machine.System{machine.NewCSP2GPU(), machine.NewCSP2(), machine.NewCSP2EC()} {
		c, err := perfmodel.Characterize(sys, streamSamples, newRNG())
		if err != nil {
			return Report{}, err
		}
		rng := newRNG()
		for nodes := 1; nodes <= 4; nodes++ {
			ranks := nodes * sys.CoresPerNode
			w, _, err := cache.workload(cyl, ranks, lbm.HarveyAccess(), "harvey")
			if err != nil {
				return Report{}, err
			}
			actual, err := simcloud.Run(w, sys, benchSteps, rng)
			if err != nil {
				return Report{}, err
			}
			pred, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelDirect, Workload: &w})
			if err != nil {
				return Report{}, err
			}
			x := float64(nodes)
			series[sys.Abbrev+"/actual"] = append(series[sys.Abbrev+"/actual"], Point{X: x, Y: actual.MFLUPS})
			series[sys.Abbrev+"/direct"] = append(series[sys.Abbrev+"/direct"], Point{X: x, Y: pred.MFLUPS})
			fmt.Fprintf(&text, "%8d %-12s %12.2f %12.2f %14.3g\n",
				nodes, sys.Abbrev, actual.MFLUPS, pred.MFLUPS, pred.CPUGPUs)
		}
	}
	return Report{
		ID:     "ext-gpu",
		Title:  "Extension: GPU instance vs CPU instances per node, with the Eq. 2 t_CPU-GPU term",
		Text:   text.String(),
		Series: series,
	}, nil
}

// ExtSharedNode sweeps co-tenant occupancy on a quarter-populated CSP-2
// node (the Discussion's shared-allocation scenario): simulated truth vs
// the occupancy-aware direct model. Series: "actual" and "direct" over
// occupancy.
func ExtSharedNode() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	sys := machine.NewCSP2()
	c, err := perfmodel.Characterize(sys, streamSamples, newRNG())
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	w, _, err := cache.workload(cyl, 9, lbm.HarveyAccess(), "harvey") // 9 of 36 cores
	if err != nil {
		return Report{}, err
	}
	series := map[string][]Point{}
	var text strings.Builder
	fmt.Fprintf(&text, "%12s %12s %12s\n", "occupancy", "actual", "direct")
	for _, occ := range []float64{0, 0.25, 0.5, 0.75, 1} {
		actual, err := simcloud.RunOpts(w, sys, benchSteps, nil, simcloud.Options{SharedOccupancy: occ})
		if err != nil {
			return Report{}, err
		}
		pred, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelDirect, Workload: &w, Occupancy: occ})
		if err != nil {
			return Report{}, err
		}
		series["actual"] = append(series["actual"], Point{X: occ, Y: actual.MFLUPS})
		series["direct"] = append(series["direct"], Point{X: occ, Y: pred.MFLUPS})
		fmt.Fprintf(&text, "%12.2f %12.2f %12.2f\n", occ, actual.MFLUPS, pred.MFLUPS)
	}
	return Report{
		ID:     "ext-shared",
		Title:  "Extension: shared-node co-tenancy, measured vs occupancy-aware model",
		Text:   text.String(),
		Series: series,
	}, nil
}

// ExtWeakScaling complements the paper's strong-scaling study: the
// cylinder grows with the rank count so every task keeps the same number
// of fluid points, and the reported efficiency is MFLUPS(n)/(n*MFLUPS(1)).
// Perfect weak scaling holds efficiency at 1; communication growth bends
// it down, more on the slow interconnect than on EC. Series:
// "<system>/efficiency" over ranks, plus "<system>/mflups".
func ExtWeakScaling() (Report, error) {
	// Base slab: one node's worth of work per 9 ranks.
	const baseLen = 20
	rng := newRNG()
	access := lbm.HarveyAccess()
	series := map[string][]Point{}
	var text strings.Builder
	fmt.Fprintf(&text, "%-10s %8s %12s %12s\n", "system", "ranks", "MFLUPS", "efficiency")
	for _, sys := range []*machine.System{machine.NewCSP2(), machine.NewCSP2EC()} {
		var base float64
		for _, ranks := range []int{1, 2, 4, 9, 18, 36, 72, 144} {
			dom, err := geometry.Cylinder(baseLen*ranks, 16)
			if err != nil {
				return Report{}, err
			}
			s, err := solverFor(dom)
			if err != nil {
				return Report{}, err
			}
			p, err := decomp.RCB(s, ranks, access)
			if err != nil {
				return Report{}, err
			}
			w := simcloud.FromPartition("cyl-weak", s.N(), p)
			res, err := simcloud.Run(w, sys, benchSteps, rng)
			if err != nil {
				return Report{}, err
			}
			if ranks == 1 {
				base = res.MFLUPS
			}
			eff := res.MFLUPS / (float64(ranks) * base)
			x := float64(ranks)
			series[sys.Abbrev+"/mflups"] = append(series[sys.Abbrev+"/mflups"], Point{X: x, Y: res.MFLUPS})
			series[sys.Abbrev+"/efficiency"] = append(series[sys.Abbrev+"/efficiency"], Point{X: x, Y: eff})
			fmt.Fprintf(&text, "%-10s %8d %12.2f %12.3f\n", sys.Abbrev, ranks, res.MFLUPS, eff)
		}
	}
	return Report{
		ID:     "ext-weak",
		Title:  "Extension: weak scaling (constant work per rank) on CSP-2 with and without EC",
		Text:   text.String(),
		Series: series,
	}, nil
}

// ExtConvergence runs the classic grid-refinement validation the numerical
// accuracy of everything else rests on: force-driven Poiseuille flow at
// increasing resolution, fitting the parabolic profile's curvature and
// comparing the implied viscosity to the solver's nominal value. The
// error must shrink with resolution. Series: "viscosity-error" over tube
// radius.
func ExtConvergence() (Report, error) {
	const g = 2e-6
	var text strings.Builder
	series := map[string][]Point{}
	fmt.Fprintf(&text, "%8s %14s %14s %12s\n", "radius", "nominal nu", "fitted nu", "rel error")
	for _, radius := range []float64{4, 6, 9} {
		dom, err := geometry.Cylinder(8, radius)
		if err != nil {
			return Report{}, err
		}
		params := lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{g, 0, 0}}
		s, err := lbm.NewSparse(dom, params)
		if err != nil {
			return Report{}, err
		}
		// March to steady state: stop when the peak velocity stalls.
		prev := -1.0
		for i := 0; i < 400; i++ {
			s.Run(100)
			var umax float64
			for si := 0; si < s.N(); si++ {
				_, ux, _, _ := s.Macro(si)
				umax = math.Max(umax, ux)
			}
			if math.Abs(umax-prev) < 1e-12 {
				break
			}
			prev = umax
		}
		// Fit u against r^2 over the interior of the mid cross-section.
		cy := float64(dom.NY-1) / 2
		cz := float64(dom.NZ-1) / 2
		var r2s, us []float64
		for si := 0; si < s.N(); si++ {
			x, y, z := s.SiteCoords(si)
			if x != dom.NX/2 {
				continue
			}
			dy, dz := float64(y)-cy, float64(z)-cz
			r2 := dy*dy + dz*dz
			if r2 > (0.75*radius)*(0.75*radius) {
				continue
			}
			_, ux, _, _ := s.Macro(si)
			r2s = append(r2s, r2)
			us = append(us, ux)
		}
		line, err := fit.LinearLSQ(r2s, us)
		if err != nil {
			return Report{}, err
		}
		nuFit := -g / (4 * line.Slope)
		nu := params.Viscosity()
		rel := math.Abs(nuFit-nu) / nu
		fmt.Fprintf(&text, "%8.0f %14.5f %14.5f %11.2f%%\n", radius, nu, nuFit, rel*100)
		series["viscosity-error"] = append(series["viscosity-error"], Point{X: radius, Y: rel})
	}
	return Report{
		ID:     "ext-convergence",
		Title:  "Extension: grid-convergence of the LBM solver against analytic Poiseuille flow",
		Text:   text.String(),
		Series: series,
	}, nil
}

// ExtPulsatile runs the hemodynamic-physics extension: steady versus
// reversing pulsatile inflow through the stenosed vessel, reporting the
// clinical wall metrics (surface-averaged OSI and peak wall shear) the
// simulations exist to produce. Reversing flow must elevate OSI while
// steady flow keeps it near zero. Series: "osi" and "peak-wss" with x=0
// (steady) and x=1 (pulsatile).
func ExtPulsatile() (Report, error) {
	run := func(wave lbm.Waveform) (osi, peakWSS float64, err error) {
		dom, err := geometry.StenosedCylinder(64, 8, 0.4, 5)
		if err != nil {
			return 0, 0, err
		}
		s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.03, Pulsatile: wave})
		if err != nil {
			return 0, 0, err
		}
		warm := 600
		span := 200
		if wave.Period > 0 {
			warm = 2 * int(wave.Period)
			span = int(wave.Period)
		}
		s.Run(warm)
		acc := lbm.NewOSIAccumulator(s)
		for i := 0; i < span; i++ {
			s.Step()
			acc.Accumulate()
		}
		osi, err = acc.MeanOSI()
		if err != nil {
			return 0, 0, err
		}
		sites, err := acc.OSI()
		if err != nil {
			return 0, 0, err
		}
		for _, site := range sites {
			if site.MeanWSS > peakWSS {
				peakWSS = site.MeanWSS
			}
		}
		return osi, peakWSS, nil
	}
	steadyOSI, steadyWSS, err := run(lbm.Waveform{})
	if err != nil {
		return Report{}, err
	}
	pulsOSI, pulsWSS, err := run(lbm.Waveform{Period: 150, Amplitude: 1.6})
	if err != nil {
		return Report{}, err
	}
	var text strings.Builder
	fmt.Fprintf(&text, "%-12s %12s %14s\n", "inflow", "mean OSI", "peak WSS")
	fmt.Fprintf(&text, "%-12s %12.4f %14.3g\n", "steady", steadyOSI, steadyWSS)
	fmt.Fprintf(&text, "%-12s %12.4f %14.3g\n", "pulsatile", pulsOSI, pulsWSS)
	return Report{
		ID:    "ext-pulsatile",
		Title: "Extension: pulsatile vs steady inflow — OSI and peak wall shear in a stenosed vessel",
		Text:  text.String(),
		Series: map[string][]Point{
			"osi":      {{X: 0, Y: steadyOSI}, {X: 1, Y: pulsOSI}},
			"peak-wss": {{X: 0, Y: steadyWSS}, {X: 1, Y: pulsWSS}},
		},
	}, nil
}

// ExtTermSelection runs the Discussion's add-and-check feedback loop: the
// FLOP roofline term and a kernel-overhead term are offered to the
// selector against measured data; the report records which survive and
// the accuracy before and after. Series: "mape" with x=0 (base) and x=1
// (selected).
func ExtTermSelection() (Report, error) {
	cyl, _, _, err := Geometries()
	if err != nil {
		return Report{}, err
	}
	sys := machine.NewCSP2()
	c, err := perfmodel.Characterize(sys, streamSamples, newRNG())
	if err != nil {
		return Report{}, err
	}
	cache := newWorkloadCache()
	var obs []perfmodel.Observation
	rng := newRNG()
	for _, ranks := range []int{4, 9, 18, 36} {
		w, _, err := cache.workload(cyl, ranks, lbm.HarveyAccess(), "harvey")
		if err != nil {
			return Report{}, err
		}
		res, err := simcloud.Run(w, sys, benchSteps, rng)
		if err != nil {
			return Report{}, err
		}
		obs = append(obs, perfmodel.Observation{Workload: w, MeasuredMFLUPS: res.MFLUPS})
	}
	candidates := []perfmodel.Term{
		perfmodel.FlopTerm(
			roofline.D3Q19BGK(lbm.HarveyAccess().PointBytes(19)),
			roofline.Machine{PeakGFLOPS: 1500, PeakBandwidthGBps: c.Mem.Saturation() / 1000},
		),
		perfmodel.OverheadTerm(0.18),
		perfmodel.ConstantTerm("barrier-1us", 1e-6),
	}
	res, err := c.SelectTerms(candidates, obs, 0.01)
	if err != nil {
		return Report{}, err
	}
	var text strings.Builder
	fmt.Fprintf(&text, "candidates offered: %d (workload: cylinder on %s, %d observations)\n",
		len(candidates), sys.Abbrev, len(obs))
	fmt.Fprintf(&text, "kept:     %v\n", res.Kept)
	fmt.Fprintf(&text, "rejected: %v\n", res.Rejected)
	fmt.Fprintf(&text, "MAPE: base %.1f%% -> selected %.1f%%\n", res.BaseMAPE*100, res.FinalMAPE*100)
	return Report{
		ID:    "ext-terms",
		Title: "Extension: model-term add-and-check feedback loop",
		Text:  text.String(),
		Series: map[string][]Point{
			"mape": {{X: 0, Y: res.BaseMAPE}, {X: 1, Y: res.FinalMAPE}},
		},
	}, nil
}
