package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

// TestGenerateTableDeterministicAndValid regenerates the Tier 2 table
// twice: the bytes must match (fixed harvest seed), pass LoadTable's
// strict validation, and agree with the committed copy — if this fails
// after a simulator change, rerun `cmd/experiments -gen-tables`.
func TestGenerateTableDeterministicAndValid(t *testing.T) {
	var a, b bytes.Buffer
	if err := GenerateTable(&a); err != nil {
		t.Fatal(err)
	}
	if err := GenerateTable(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("GenerateTable is not deterministic")
	}
	tbl, err := perfmodel.LoadTable(strings.NewReader(a.String()))
	if err != nil {
		t.Fatalf("generated table fails validation: %v", err)
	}
	for _, sys := range []string{"TRC", "CSP-1", "CSP-2", "CSP-2 EC", "CSP-2 Small"} {
		if !tbl.Covers(sys, perfmodel.DefaultKernel) {
			t.Errorf("generated table has no rows for %s", sys)
		}
	}
	committed, err := os.ReadFile("../perfmodel/tables/measured.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(committed), bytes.TrimSpace(a.Bytes())) {
		t.Error("committed tables/measured.csv is stale; regenerate with `go run ./cmd/experiments -gen-tables`")
	}
}

// TestTiersAccuracyOrdering runs the per-tier evaluation on the embedded
// table and asserts the acceptance property: measured lookup beats the
// calibrated fit, which beats pure physics, and Tier 1's known
// kernel-overhead overprediction is surfaced as a residual-bias anomaly.
func TestTiersAccuracyOrdering(t *testing.T) {
	tbl, err := perfmodel.DefaultTable()
	if err != nil {
		t.Fatal(err)
	}
	report, bench, err := Tiers(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !bench.OrderingOK {
		t.Errorf("accuracy ordering violated: %+v", bench.Tiers)
	}
	for _, tier := range []string{perfmodel.Tier0Physics, perfmodel.Tier1Calibrated, perfmodel.Tier2Measured} {
		st, ok := bench.Tiers[tier]
		if !ok || st.N == 0 {
			t.Errorf("tier %s not evaluated", tier)
			continue
		}
		if len(st.BySystem) != 5 {
			t.Errorf("tier %s covers %d systems, want 5", tier, len(st.BySystem))
		}
	}
	if m := bench.Tiers[perfmodel.Tier2Measured].MAPEPct; m > 5 {
		t.Errorf("tier2 MAPE %.2f%% exceeds the noise floor budget of 5%%", m)
	}
	// The simulator's KernelOverhead makes Tier 1 overpredict
	// systematically; the anomaly check must catch it.
	var tier1Anomaly bool
	for _, a := range bench.Anomalies {
		if strings.HasPrefix(a, perfmodel.Tier1Calibrated+"/") && strings.Contains(a, "overprediction") {
			tier1Anomaly = true
		}
	}
	if !tier1Anomaly {
		t.Error("tier1 overprediction bias not flagged as an anomaly")
	}
	if !strings.Contains(report.Text, "MAPE") {
		t.Error("report text missing MAPE table")
	}
}
