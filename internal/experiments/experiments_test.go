package experiments

import (
	"strings"
	"sync"
	"testing"
)

// Reports are cached across tests: each regeneration is seconds of work
// and the assertions only read them.
var (
	cacheMu sync.Mutex
	cache   = map[string]Report{}
)

func report(t *testing.T, id string, f func() (Report, error)) Report {
	t.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[id]; ok {
		return r
	}
	r, err := f()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Fatalf("report id %q, want %q", r.ID, id)
	}
	cache[id] = r
	return r
}

func value(t *testing.T, r Report, key string, x float64) float64 {
	t.Helper()
	v, err := r.seriesValue(key, x)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTable1Content(t *testing.T) {
	r := Table1()
	for _, want := range []string{"TRC", "CSP-1", "CSP-2 Small", "CSP-2 EC", "E5-2699", "Platinum 8124M", "56", "100"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	if len(r.Series) != 5 {
		t.Errorf("Table I has %d systems, want 5", len(r.Series))
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates full scaling study")
	}
	r := report(t, "fig3", Fig3)
	// Strong scaling rises from 2 to 16 ranks on every system/geometry.
	for key, s := range r.Series {
		if len(s) < 3 {
			t.Fatalf("series %q too short", key)
		}
		if s[0].X != 2 {
			t.Fatalf("series %q does not start at 2 ranks", key)
		}
		at2, at16 := value(t, r, key, 2), value(t, r, key, 16)
		if at16 <= at2 {
			t.Errorf("%s: no strong scaling, %v at 2 vs %v at 16 ranks", key, at2, at16)
		}
	}
	// Figure 3 narrative: the cerebral geometry performs best (wall points
	// are cheaper), the cylinder worst, on the model-evaluation system.
	for _, ranks := range []float64{4, 16} {
		cer := value(t, r, "CSP-2/cerebral", ranks)
		cyl := value(t, r, "CSP-2/cylinder", ranks)
		if cer <= cyl {
			t.Errorf("at %v ranks cerebral (%v) not above cylinder (%v)", ranks, cer, cyl)
		}
	}
}

func TestFig4KernelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates proxy scaling study")
	}
	r := report(t, "fig4", Fig4)
	// Per-point noise (the node-bandwidth contention draw) can flip
	// single-rank comparisons of nearby curves, so compare curves by their
	// average over a rank window, as a reader of Figure 4 would.
	avg := func(key string) float64 {
		var sum float64
		n := 0
		for _, ranks := range []float64{8, 16, 32} {
			sum += value(t, r, key, ranks)
			n++
		}
		return sum / float64(n)
	}
	for _, sys := range []string{"TRC", "CSP-2"} {
		aosAB := avg(sys + "/AOS-AB")
		aosAA := avg(sys + "/AOS-AA")
		soaAB := avg(sys + "/SOA-AB-unrolled")
		soaAA := avg(sys + "/SOA-AA-unrolled")
		// AA is shifted up from AB (Figure 4's headline).
		if soaAA <= soaAB {
			t.Errorf("%s: unrolled SOA AA (%v) not above AB (%v)", sys, soaAA, soaAB)
		}
		// AOS beats SOA for AB but not for AA (paper's observation).
		if aosAB <= soaAB {
			t.Errorf("%s: AOS-AB (%v) not above SOA-AB (%v)", sys, aosAB, soaAB)
		}
		if aosAA >= soaAA {
			t.Errorf("%s: AOS-AA (%v) not below SOA-AA (%v)", sys, aosAA, soaAA)
		}
	}
}

func TestFig5TwoRegimes(t *testing.T) {
	r := report(t, "fig5", Fig5)
	if len(r.Series) != 12 { // 6 labels x {measured, fit}
		t.Fatalf("fig5 has %d series, want 12", len(r.Series))
	}
	// Bandwidth at full threads is far below the single-thread slope
	// extrapolated — the knee exists.
	for _, sys := range []string{"TRC", "CSP-2"} {
		m := r.Series[sys+"/measured"]
		first, last := m[0], m[len(m)-1]
		linear := first.Y * last.X
		if last.Y > 0.6*linear {
			t.Errorf("%s: no saturation: %v at %v threads vs linear %v", sys, last.Y, last.X, linear)
		}
	}
	// Hyperthreaded sweep extends to 72 threads without bandwidth gain
	// over the physical-core peak.
	hyp := r.Series["CSP-2 Hyp./measured"]
	if hyp[len(hyp)-1].X != 72 {
		t.Fatalf("hyperthreaded sweep ends at %v threads, want 72", hyp[len(hyp)-1].X)
	}
	peak36 := value(t, r, "CSP-2 Hyp./measured", 36)
	at72 := value(t, r, "CSP-2 Hyp./measured", 72)
	if at72 > peak36*1.05 {
		t.Errorf("hyperthreading increased bandwidth: %v at 72 vs %v at 36", at72, peak36)
	}
}

func TestTable2Signs(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: TRC -27.57%, CSP-1 +9.23%, CSP-2 -35.92%, CSP-2 EC -29.07%.
	// The reproduction must match the signs and be within a few points.
	check := func(sys string, wantPct float64) {
		pts := r.Series[sys]
		if len(pts) != 1 {
			t.Fatalf("%s: series shape wrong", sys)
		}
		got := (pts[0].Y - pts[0].X) / pts[0].X * 100
		if got*wantPct < 0 {
			t.Errorf("%s: difference %+.2f%% has wrong sign (paper %+.2f%%)", sys, got, wantPct)
		}
		if got < wantPct-8 || got > wantPct+8 {
			t.Errorf("%s: difference %+.2f%% far from paper's %+.2f%%", sys, got, wantPct)
		}
	}
	check("TRC", -27.57)
	check("CSP-1", 9.23)
	check("CSP-2", -35.92)
	check("CSP-2 EC", -29.07)
}

func TestFig6InterconnectOrdering(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// At every swept size: TRC fastest; EC faster than no-EC.
	trc := r.Series["TRC/fit"]
	ec := r.Series["CSP-2 EC/fit"]
	noEC := r.Series["CSP-2/fit"]
	if len(trc) == 0 || len(trc) != len(ec) || len(ec) != len(noEC) {
		t.Fatal("fit series shapes differ")
	}
	for i := range trc {
		if !(trc[i].Y < ec[i].Y && ec[i].Y < noEC[i].Y) {
			t.Errorf("at %v bytes: want TRC < EC < no-EC, got %v, %v, %v",
				trc[i].X, trc[i].Y, ec[i].Y, noEC[i].Y)
		}
	}
}

func TestTable3Content(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "N/A") {
		t.Error("Table III should mark single-instance systems' comm as N/A")
	}
	if !strings.Contains(r.Text, "72*") {
		t.Error("Table III should flag the hyperthreaded row")
	}
	for _, sys := range []string{"TRC", "CSP-2", "CSP-2 EC", "CSP-2 Hyp.", "CSP-1"} {
		if _, ok := r.Series[sys]; !ok {
			t.Errorf("Table III missing row %q", sys)
		}
	}
}

func TestTable4NoiseClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates 7-day noise study")
	}
	r := report(t, "table4", Table4)
	// The paper's claim: noise has little effect (CV at the percent level)
	// and the cloud is not significantly noisier than the dedicated
	// instance.
	var cvCSP1, cvSmall []float64
	for _, p := range r.Series["CSP-1/cv"] {
		cvCSP1 = append(cvCSP1, p.Y)
	}
	for _, p := range r.Series["CSP-2 Small/cv"] {
		cvSmall = append(cvSmall, p.Y)
	}
	if len(cvCSP1) != 3 || len(cvSmall) != 4 {
		t.Fatalf("rank coverage wrong: %d, %d rows", len(cvCSP1), len(cvSmall))
	}
	var maxAll, sum1, sum2 float64
	for _, cv := range cvCSP1 {
		sum1 += cv
		if cv > maxAll {
			maxAll = cv
		}
	}
	for _, cv := range cvSmall {
		sum2 += cv
		if cv > maxAll {
			maxAll = cv
		}
	}
	if maxAll > 0.05 {
		t.Errorf("noise CV %v exceeds the paper's percent-level regime", maxAll)
	}
	mean1, mean2 := sum1/3, sum2/4
	if mean2 > 2.5*mean1 {
		t.Errorf("cloud CV %v significantly above dedicated %v", mean2, mean1)
	}
}

func TestFig7ModelClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates model-validation study")
	}
	r := report(t, "fig7", Fig7)
	for _, g := range []string{"cylinder", "aorta", "cerebral"} {
		actual := r.Series[g+"/actual"]
		over := 0
		for _, p := range actual {
			d := value(t, r, g+"/direct", p.X)
			ratio := d / p.Y
			if ratio > 1 {
				over++
			}
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("%s: direct model off by %vx at %v ranks", g, ratio, p.X)
			}
		}
		// "Both performance models overpredicted ... in all cases": the
		// overhead the models cannot see makes most points overpredictions.
		if over < len(actual)*2/3 {
			t.Errorf("%s: direct model overpredicts only %d/%d points", g, over, len(actual))
		}
	}
	// Relative performance: cerebral above cylinder in both actual and
	// direct prediction at moderate scale.
	for _, kind := range []string{"actual", "direct"} {
		cer := value(t, r, "cerebral/"+kind, 8)
		cyl := value(t, r, "cylinder/"+kind, 8)
		if cer <= cyl {
			t.Errorf("%s: cerebral (%v) not above cylinder (%v) at 8 ranks", kind, cer, cyl)
		}
	}
}

func TestFig8UnrolledAAClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates proxy model study")
	}
	r := report(t, "fig8", Fig8)
	const ranks = 16
	// "The performance improvement of AA over AB ... occurs only for the
	// unrolled kernels."
	aaU := value(t, r, "SOA-AA-unrolled/actual", ranks)
	abU := value(t, r, "SOA-AB-unrolled/actual", ranks)
	if aaU <= abU {
		t.Errorf("unrolled: AA (%v) not above AB (%v)", aaU, abU)
	}
	aaR := value(t, r, "SOA-AA/actual", ranks)
	abR := value(t, r, "SOA-AB/actual", ranks)
	if aaR > abR*1.10 {
		t.Errorf("rolled: AA (%v) should not outrun AB (%v) appreciably", aaR, abR)
	}
	// Predictions track the AA-vs-AB ordering for the unrolled kernels.
	aaUP := value(t, r, "SOA-AA-unrolled/direct", ranks)
	abUP := value(t, r, "SOA-AB-unrolled/direct", ranks)
	if aaUP <= abUP {
		t.Errorf("direct model misses unrolled AA advantage: %v vs %v", aaUP, abUP)
	}
}

func TestFig9CompositionShift(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates composition study")
	}
	r := report(t, "fig9", Fig9)
	mem := r.Series["mem"]
	first, last := mem[0].X, mem[len(mem)-1].X
	memShare := func(x float64) float64 {
		m := value(t, r, "mem", x)
		tot := m + value(t, r, "intra", x) + value(t, r, "inter", x)
		return m / tot
	}
	if memShare(first) < 0.8 {
		t.Errorf("memory share at %v ranks is %v, want dominant", first, memShare(first))
	}
	if memShare(last) >= memShare(first) {
		t.Errorf("memory share did not shrink with scale: %v -> %v", memShare(first), memShare(last))
	}
	// Inter-node communication appears once the job spans nodes and
	// dominates intra-node time there (Figure 9's green vs purple).
	if inter := value(t, r, "inter", last); inter <= value(t, r, "intra", last) {
		t.Errorf("inter-node time %v not above intra-node at %v ranks", inter, last)
	}
}

func TestFig10LatencyDominatesBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates composition study")
	}
	r := report(t, "fig10", Fig10)
	lat := r.Series["comm-latency"]
	last := lat[len(lat)-1].X
	// "The bulk of the internodal communication time is due to latency and
	// not due to insufficient bandwidth."
	if value(t, r, "comm-latency", last) <= value(t, r, "comm-bw", last) {
		t.Errorf("latency (%v) not above bandwidth time (%v) at %v ranks",
			value(t, r, "comm-latency", last), value(t, r, "comm-bw", last), last)
	}
}

func TestFig11Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates heatmap study")
	}
	r := report(t, "fig11", Fig11)
	// Diagonal is exactly 1.
	for _, sys := range []string{"TRC", "CSP-2", "CSP-2 EC"} {
		if v := value(t, r, sys+"/"+sys, 0); v != 1 {
			t.Errorf("diagonal %s = %v, want 1", sys, v)
		}
	}
	// Paper's Figure 11 ordering at 2048 cores: CSP-2 EC > CSP-2 > TRC.
	ecOverTRC := value(t, r, "CSP-2 EC/TRC", 0)
	csp2OverTRC := value(t, r, "CSP-2/TRC", 0)
	if !(ecOverTRC > csp2OverTRC && csp2OverTRC > 1) {
		t.Errorf("ordering wrong: EC/TRC=%v, CSP-2/TRC=%v", ecOverTRC, csp2OverTRC)
	}
	// Reciprocity (Eq. 17).
	if v := ecOverTRC * value(t, r, "TRC/CSP-2 EC", 0); v < 0.999 || v > 1.001 {
		t.Errorf("reciprocity violated: %v", v)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite")
	}
	reports, err := All()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table1", "fig3", "fig4", "fig5", "table2", "fig6", "table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig11"}
	if len(reports) != len(want) {
		t.Fatalf("All returned %d reports, want %d", len(reports), len(want))
	}
	for i, id := range want {
		if reports[i].ID != id {
			t.Errorf("report %d is %q, want %q", i, reports[i].ID, id)
		}
		if reports[i].Text == "" || len(reports[i].Series) == 0 {
			t.Errorf("report %q is empty", id)
		}
	}
}
