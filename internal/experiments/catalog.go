package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// Table1 renders the hardware catalog exactly as Table I of the paper
// lays it out.
func Table1() Report {
	cat := machine.Catalog()
	var b strings.Builder
	row := func(name string, f func(*machine.System) string) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, s := range cat {
			fmt.Fprintf(&b, "%-28s", f(s))
		}
		b.WriteByte('\n')
	}
	row("System", func(s *machine.System) string { return s.Name })
	row("Abbreviation", func(s *machine.System) string { return s.Abbrev })
	row("CPU", func(s *machine.System) string { return s.CPU })
	row("CPU Clock (GHz)", func(s *machine.System) string { return fmt.Sprintf("%.2f", s.ClockGHz) })
	row("Core Count", func(s *machine.System) string { return fmt.Sprintf("%d", s.TotalCores) })
	row("Cores per Node", func(s *machine.System) string { return fmt.Sprintf("%d", s.CoresPerNode) })
	row("Memory per Node (GB)", func(s *machine.System) string { return fmt.Sprintf("%.0f", s.MemPerNodeGB) })
	row("Interconnect (Gbit/s)", func(s *machine.System) string { return fmt.Sprintf("%.0f", s.InterconnectGbps) })
	row("Price ($/node-hour)", func(s *machine.System) string { return fmt.Sprintf("%.2f", s.PricePerNodeHourUSD) })

	series := map[string][]Point{}
	for _, s := range cat {
		series[s.Abbrev] = []Point{
			{X: float64(s.CoresPerNode), Y: s.InterconnectGbps},
		}
	}
	return Report{
		ID:     "table1",
		Title:  "Table I: hardware details for all tested instances",
		Text:   b.String(),
		Series: series,
	}
}
