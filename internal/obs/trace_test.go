package obs

import (
	"testing"
	"time"

	"repro/internal/units"
)

// fixedClock returns a Clock that advances stepNS per call from a fixed
// epoch, making wall fields deterministic in tests.
func fixedClock(stepNS int64) Clock {
	base := time.Unix(1700000000, 0)
	var calls int64
	return func() time.Time {
		calls++
		return base.Add(time.Duration(calls * stepNS))
	}
}

func TestSpanIDDeterministic(t *testing.T) {
	a := spanID(42, 0)
	b := spanID(42, 0)
	if a != b {
		t.Fatalf("same seed+seq gave different IDs: %v vs %v", a, b)
	}
	if spanID(42, 1) == a {
		t.Fatalf("different seq gave identical ID")
	}
	if spanID(43, 0) == a {
		t.Fatalf("different seed gave identical ID")
	}
	if len(a.String()) != 16 {
		t.Fatalf("ID string %q is not 16 hex digits", a.String())
	}
	if SpanID(0).String() != "" {
		t.Fatalf("zero ID should render empty, got %q", SpanID(0).String())
	}
}

func TestTracerSameSeedSameSpans(t *testing.T) {
	build := func() []SpanRecord {
		tr := NewTracer(7)
		tr.SetClock(fixedClock(1000))
		root := tr.Start("campaign", 0)
		child := tr.StartChild(root, "job", 1.5)
		child.SetAttr("name", "aorta")
		child.SetAttrF("steps", 1000)
		child.End(4.5)
		root.End(5)
		return tr.Spans()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Parent != b[i].Parent || a[i].Name != b[i].Name {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSpanHierarchyAndFields(t *testing.T) {
	tr := NewTracer(1)
	tr.SetClock(fixedClock(1000))
	root := tr.Start("root", 10)
	root.SetTrack("lane-a")
	child := tr.StartChild(root, "child", 11)
	if got := child.ID(); got == 0 {
		t.Fatalf("child has zero ID")
	}
	child.End(12)
	child.End(99) // second End must be ignored
	root.End(20)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	r, c := spans[0], spans[1]
	if c.Parent != r.ID {
		t.Fatalf("child parent %q != root ID %q", c.Parent, r.ID)
	}
	if c.Track != "lane-a" {
		t.Fatalf("child did not inherit parent track, got %q", c.Track)
	}
	if !units.ApproxEqual(c.SimEndS, 12, 1e-12) {
		t.Fatalf("second End overwrote first: SimEndS = %g", c.SimEndS)
	}
	if !c.Ended || !r.Ended {
		t.Fatalf("spans not marked ended: %+v %+v", r, c)
	}
	if c.WallDurNS <= 0 {
		t.Fatalf("ended span has non-positive wall duration %d", c.WallDurNS)
	}
	if got := c.SimDurS(); !units.ApproxEqual(got, 1, 1e-12) {
		t.Fatalf("SimDurS = %g, want 1", got)
	}
}

func TestUnendedSpanSnapshot(t *testing.T) {
	tr := NewTracer(1)
	tr.SetClock(fixedClock(1000))
	tr.Start("open", 3)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	s := spans[0]
	if s.Ended {
		t.Fatalf("unended span reported Ended")
	}
	if s.SimDurS() != 0 || s.WallDurNS != 0 {
		t.Fatalf("unended span has nonzero duration: %+v", s)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.SetClock(nil)
	s := tr.Start("x", 0)
	if s != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	c := tr.StartChild(s, "y", 0)
	// All span methods must be safe on nil.
	s.SetTrack("t")
	s.SetAttr("k", "v")
	s.SetAttrF("f", 1.5)
	s.End(1)
	c.End(2)
	if s.ID() != 0 {
		t.Fatalf("nil span ID = %v, want 0", s.ID())
	}
	if tr.Spans() != nil || tr.Len() != 0 {
		t.Fatalf("nil tracer reported spans")
	}
}

func TestStartChildNilParentIsRoot(t *testing.T) {
	tr := NewTracer(3)
	tr.SetClock(fixedClock(1000))
	s := tr.StartChild(nil, "orphan", 0)
	s.End(1)
	spans := tr.Spans()
	if spans[0].Parent != "" {
		t.Fatalf("nil-parent child has parent %q", spans[0].Parent)
	}
}

func TestSpanRecordAttr(t *testing.T) {
	r := SpanRecord{Attrs: []Attr{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}}
	if r.Attr("b") != "2" {
		t.Fatalf("Attr(b) = %q", r.Attr("b"))
	}
	if r.Attr("missing") != "" {
		t.Fatalf("Attr(missing) = %q", r.Attr("missing"))
	}
}
