package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tp := TraceParent{
		TraceID: TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210},
		SpanID:  SpanID(0xdeadbeefcafef00d),
		Sampled: true,
	}
	enc := tp.String()
	if len(enc) != traceParentLen {
		t.Fatalf("encoded length %d, want %d: %q", len(enc), traceParentLen, enc)
	}
	want := "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01"
	if enc != want {
		t.Fatalf("encoded %q, want %q", enc, want)
	}
	got, err := ParseTraceParent(enc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != tp {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, tp)
	}
}

func TestTraceParentUnsampled(t *testing.T) {
	tp := TraceParent{TraceID: TraceID{Lo: 1}, SpanID: 2, Sampled: false}
	got, err := ParseTraceParent(tp.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Sampled {
		t.Fatalf("flags 00 parsed as sampled")
	}
}

func TestTraceParentZeroEncodesEmpty(t *testing.T) {
	if s := (TraceParent{}).String(); s != "" {
		t.Fatalf("zero TraceParent encoded as %q, want empty", s)
	}
	if s := (TraceParent{TraceID: TraceID{Lo: 1}}).String(); s != "" {
		t.Fatalf("parentless TraceParent encoded as %q, want empty", s)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01"
	cases := map[string]string{
		"empty":          "",
		"truncated":      valid[:54],
		"oversized":      valid + "0",
		"version-ff":     "ff" + valid[2:],
		"bad-sep":        strings.Replace(valid, "-", "_", 1),
		"uppercase-hex":  strings.ToUpper(valid),
		"nonhex-trace":   "00-z123456789abcdeffedcba9876543210-deadbeefcafef00d-01",
		"nonhex-flags":   valid[:53] + "zz",
		"zero-trace-id":  "00-00000000000000000000000000000000-deadbeefcafef00d-01",
		"zero-parent-id": "00-0123456789abcdeffedcba9876543210-0000000000000000-01",
		"plus-sign":      "00-+123456789abcdeffedcba9876543210-deadbeefcafef00d-01",
	}
	for name, v := range cases {
		if _, err := ParseTraceParent(v); err == nil {
			t.Errorf("%s: ParseTraceParent(%q) accepted invalid input", name, v)
		}
	}
}

func FuzzParseTraceParent(f *testing.F) {
	f.Add("00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01")
	f.Add("")
	f.Add("00--")
	f.Add(strings.Repeat("0", 55))
	f.Add(strings.Repeat("a", 4096))
	f.Add("00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-0")
	f.Fuzz(func(t *testing.T, v string) {
		tp, err := ParseTraceParent(v)
		if err != nil {
			if tp != (TraceParent{}) {
				t.Fatalf("error return carried non-zero context: %+v", tp)
			}
			// Invalid input must fall back to a fresh root span, never
			// a partial stitch.
			tr := NewTracer(1)
			s := tr.StartRemote(tp, "h", 0)
			if recs := tr.Spans(); recs[0].Parent != "" {
				t.Fatalf("invalid header produced a parented span: %+v", recs[0])
			}
			_ = s
			return
		}
		if !tp.Valid() {
			t.Fatalf("accepted context is invalid: %+v", tp)
		}
		// Re-encoding normalizes the flags byte to 00/01, so round-trip
		// through a second parse instead of comparing strings.
		again, err := ParseTraceParent(tp.String())
		if err != nil {
			t.Fatalf("re-encoded %q failed to parse: %v", tp.String(), err)
		}
		if again != tp {
			t.Fatalf("round-trip changed %+v to %+v", tp, again)
		}
	})
}

func TestStartRemoteStitches(t *testing.T) {
	router := NewTracer(1)
	router.SetClock(fixedClock(1000))
	fwd := router.StartChild(router.Start("router /v1/predict", 0), "forward", 0)

	replica := NewTracer(2)
	replica.SetClock(fixedClock(1000))
	h := replica.StartRemote(fwd.TraceParent(), "http /v1/predict", 0)
	h.End(0.1)

	recs := replica.Spans()
	if recs[0].Parent != fwd.ID().String() {
		t.Fatalf("handler parent %q, want forward span %q", recs[0].Parent, fwd.ID().String())
	}
	if recs[0].TraceID != fwd.TraceID().String() {
		t.Fatalf("handler trace %q, want %q", recs[0].TraceID, fwd.TraceID().String())
	}
	// The trace ID was rooted by the router's root span.
	routerRecs := router.Spans()
	if routerRecs[0].TraceID != recs[0].TraceID {
		t.Fatalf("router root trace %q != replica trace %q", routerRecs[0].TraceID, recs[0].TraceID)
	}
}

func TestLocalRootDerivesTraceFromSpanID(t *testing.T) {
	tr := NewTracer(9)
	tr.SetClock(fixedClock(1))
	root := tr.Start("r", 0)
	child := tr.StartChild(root, "c", 0)
	if got, want := root.TraceID(), (TraceID{Lo: uint64(root.ID())}); got != want {
		t.Fatalf("root trace %+v, want derived %+v", got, want)
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child did not inherit trace: %+v vs %+v", child.TraceID(), root.TraceID())
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatalf("empty context returned a span")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatalf("nil span should return ctx unchanged")
	}
	tr := NewTracer(3)
	tr.SetClock(fixedClock(1))
	s := tr.Start("x", 0)
	if got := SpanFromContext(ContextWithSpan(ctx, s)); got != s {
		t.Fatalf("SpanFromContext returned %p, want %p", got, s)
	}
	// Nil-span plumbing end to end: a nil tracer's span is nil and
	// TraceParent on it is zero (so no header is injected).
	var nilTr *Tracer
	ns := nilTr.Start("y", 0)
	if ns.TraceParent().Valid() {
		t.Fatalf("nil span produced a valid TraceParent")
	}
}
