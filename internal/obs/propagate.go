package obs

import (
	"context"
	"fmt"
)

// TraceParentHeader is the HTTP header carrying trace context between
// processes, modeled on the W3C Trace Context `traceparent` field:
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// The router injects it on every forward; serve handlers extract it so
// the replica's handler span becomes a child of the router's forward
// span. IDs stay seed-deterministic (SplitMix64, see trace.go), so a
// same-seed run reproduces the stitched tree byte for byte.
const TraceParentHeader = "traceparent"

// traceParentLen is the exact length of a version-00 traceparent value:
// 2 + 1 + 32 + 1 + 16 + 1 + 2.
const traceParentLen = 55

// TraceParent is the decoded form of a traceparent header: which trace
// the request belongs to and which remote span is the parent of
// whatever span the receiver starts.
type TraceParent struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context identifies both a trace and a
// parent span — the minimum for a receiver to stitch onto the remote
// tree. Invalid contexts must be ignored (fresh root span instead).
func (tp TraceParent) Valid() bool {
	return !tp.TraceID.IsZero() && tp.SpanID != 0
}

// String encodes the context as a version-00 traceparent value. The
// zero TraceParent encodes as "" so callers can skip header injection.
func (tp TraceParent) String() string {
	if !tp.Valid() {
		return ""
	}
	flags := 0
	if tp.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-%02x",
		tp.TraceID.Hi, tp.TraceID.Lo, uint64(tp.SpanID), flags)
}

// ParseTraceParent decodes a traceparent header value. It accepts only
// well-formed version-00 values — exact length, lowercase hex, nonzero
// trace and parent IDs — and returns an error for everything else.
// Callers treat a parse error as "no remote parent" and start a fresh
// root span; malformed input from the network must never take a
// request down (see FuzzParseTraceParent).
func ParseTraceParent(v string) (TraceParent, error) {
	if len(v) != traceParentLen {
		return TraceParent{}, fmt.Errorf("traceparent: length %d, want %d", len(v), traceParentLen)
	}
	if v[0] != '0' || v[1] != '0' {
		return TraceParent{}, fmt.Errorf("traceparent: unsupported version %q", v[:2])
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceParent{}, fmt.Errorf("traceparent: bad field separators")
	}
	hi, ok := parseHex64(v[3:19])
	if !ok {
		return TraceParent{}, fmt.Errorf("traceparent: bad trace-id")
	}
	lo, ok := parseHex64(v[19:35])
	if !ok {
		return TraceParent{}, fmt.Errorf("traceparent: bad trace-id")
	}
	span, ok := parseHex64(v[36:52])
	if !ok {
		return TraceParent{}, fmt.Errorf("traceparent: bad parent-id")
	}
	flags, ok := parseHex64(v[53:55])
	if !ok {
		return TraceParent{}, fmt.Errorf("traceparent: bad flags")
	}
	tp := TraceParent{
		TraceID: TraceID{Hi: hi, Lo: lo},
		SpanID:  SpanID(span),
		Sampled: flags&1 != 0,
	}
	if !tp.Valid() {
		return TraceParent{}, fmt.Errorf("traceparent: zero trace-id or parent-id")
	}
	return tp, nil
}

// parseHex64 decodes lowercase hex without allowing the "+", "_", or
// uppercase forms strconv.ParseUint tolerates.
func parseHex64(s string) (uint64, bool) {
	var x uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		x = x<<4 | d
	}
	return x, true
}

// spanCtxKey is the private context key under which instrumented HTTP
// handlers stash their span so downstream code (the router's forward
// path) can parent onto it.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span stored by ContextWithSpan, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
