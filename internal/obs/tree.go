package obs

import (
	"fmt"
	"sort"
	"strings"
)

// RenderSpanTree renders spans — possibly merged from several process
// exports (cmd/trace -merge) — as one indented tree per trace. Output
// is timestamp-free on purpose: it shows only structure (trace IDs,
// parent-child nesting, names, attributes, span IDs), so two same-seed
// runs render byte-identical trees even though wall clocks differ.
//
// Grouping: spans sharing a trace ID form one tree; spans without a
// trace ID each form their own group keyed by span ID (pre-propagation
// exports stay renderable). Traces order by trace ID, roots and
// children by appearance order within the input — deterministic
// because span start order is. A span whose parent ID is absent from
// the input is shown as a root with a "remote-parent" note rather than
// dropped, so a partial merge still renders every span.
func RenderSpanTree(spans []SpanRecord) string {
	byID := make(map[string]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}

	traceOf := func(s SpanRecord) string {
		if s.TraceID != "" {
			return s.TraceID
		}
		return s.ID
	}

	children := map[string][]string{} // parent span ID -> child span IDs, appearance order
	rootsByTrace := map[string][]string{}
	var traceOrder []string
	seenTrace := map[string]bool{}
	for _, s := range spans {
		tr := traceOf(s)
		if !seenTrace[tr] {
			seenTrace[tr] = true
			traceOrder = append(traceOrder, tr)
		}
		if s.Parent != "" {
			if _, ok := byID[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], s.ID)
				continue
			}
		}
		rootsByTrace[tr] = append(rootsByTrace[tr], s.ID)
	}
	sort.Strings(traceOrder)

	var b strings.Builder
	visited := make(map[string]bool, len(spans)) // cycle guard: file input may self-parent
	var render func(id string, depth int)
	render = func(id string, depth int) {
		if visited[id] {
			return
		}
		visited[id] = true
		s := byID[id]
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		if len(s.Attrs) > 0 {
			b.WriteString(" [")
			for i, a := range s.Attrs {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%s", a.Key, a.Value)
			}
			b.WriteByte(']')
		}
		fmt.Fprintf(&b, " id=%s", s.ID)
		if s.Parent != "" && depth == 1 { // a root with a parent: that parent is in another export

			fmt.Fprintf(&b, " (remote parent %s)", s.Parent)
		}
		if !s.Ended {
			b.WriteString(" (unended)")
		}
		b.WriteByte('\n')
		for _, c := range children[id] {
			render(c, depth+1)
		}
	}
	for _, tr := range traceOrder {
		roots := rootsByTrace[tr]
		if len(roots) == 0 {
			continue // every span of this trace hangs under another trace's span
		}
		fmt.Fprintf(&b, "trace %s\n", tr)
		for _, r := range roots {
			render(r, 1)
		}
	}
	return b.String()
}
