package obs

import (
	"fmt"
	"sort"
)

// TelemetrySnapshot is the wire form of one process's metric state, as
// served by `GET /v1/telemetry` on a serve replica and scraped by the
// cluster router. It carries raw mergeable state — counter sums and
// histogram buckets, never pre-computed quantiles — so fleet-wide
// aggregation stays exact (bucket counts add; p99s don't).
type TelemetrySnapshot struct {
	// Source names the emitting process (replica name); the scraper
	// fills it in when the emitter leaves it empty.
	Source string `json:"source,omitempty"`
	// UptimeS is the emitter's process uptime in seconds.
	UptimeS float64  `json:"uptime_s"`
	Metrics []Metric `json:"metrics"`
}

// metricKey mirrors the registry's internal identity (name + canonical
// label string) so merged output sorts exactly like Registry.Snapshot.
func metricKey(m Metric) string {
	_, canon := canonLabels(m.Labels)
	return m.Name + "\x02" + canon
}

// MergeMetrics folds src into dst and returns the merged slice, sorted
// by name then canonical labels (the Snapshot order). Counters and
// gauges with the same identity sum; histograms sum bucket counts and
// require identical bounds. Identity collisions across metric types,
// and histogram bucket-layout mismatches, are errors; on error dst is
// returned unmodified (validation happens before any fold, so a bad
// source never half-applies). Inputs are not mutated — merged metrics
// deep-copy their slices.
func MergeMetrics(dst, src []Metric) ([]Metric, error) {
	idx := make(map[string]int, len(dst))
	merged := make([]Metric, len(dst))
	for i, m := range dst {
		merged[i] = copyMetric(m)
		idx[metricKey(m)] = i
	}

	// Validate the whole source against the (copied) destination first:
	// a rejected snapshot must leave the aggregate untouched.
	for _, m := range src {
		i, ok := idx[metricKey(m)]
		if !ok {
			continue
		}
		d := merged[i]
		if d.Type != m.Type {
			return dst, fmt.Errorf("obs: merging %q as %s into %s", m.Name, m.Type, d.Type)
		}
		if m.Type == "histogram" {
			if err := checkBounds(d, m); err != nil {
				return dst, err
			}
		}
	}

	for _, m := range src {
		i, ok := idx[metricKey(m)]
		if !ok {
			idx[metricKey(m)] = len(merged)
			merged = append(merged, copyMetric(m))
			continue
		}
		d := &merged[i]
		switch m.Type {
		case "histogram":
			for j, c := range m.Counts {
				d.Counts[j] += c
			}
			d.Sum += m.Sum
			d.Count += m.Count
		default:
			d.Value += m.Value
		}
	}

	sort.Slice(merged, func(i, j int) bool {
		return metricKey(merged[i]) < metricKey(merged[j])
	})
	return merged, nil
}

// checkBounds verifies two histogram metrics share a bucket layout.
func checkBounds(d, m Metric) error {
	if len(d.BucketLE) != len(m.BucketLE) || len(d.Counts) != len(m.Counts) {
		return fmt.Errorf("obs: merging %q histograms with %d vs %d buckets", m.Name, len(m.BucketLE), len(d.BucketLE))
	}
	for j, b := range m.BucketLE {
		//lint:ignore floateq bucket bounds are configuration constants, copied not computed; inequality means a real layout mismatch
		if b != d.BucketLE[j] {
			return fmt.Errorf("obs: merging %q histograms with different bounds at bucket %d (%g vs %g)", m.Name, j, b, d.BucketLE[j])
		}
	}
	return nil
}

// copyMetric deep-copies the slice-valued fields so merging never
// aliases (and never mutates) a caller's snapshot.
func copyMetric(m Metric) Metric {
	m.Labels = append([]Label(nil), m.Labels...)
	m.BucketLE = append([]float64(nil), m.BucketLE...)
	m.Counts = append([]uint64(nil), m.Counts...)
	return m
}
