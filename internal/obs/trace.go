// Package obs is the repository's observability layer: hierarchical span
// tracing and a metrics registry, both stdlib-only and injection-based
// (no global mutable state). It closes the measure→model→refine loop the
// paper's Discussion anticipates ("performance monitoring projects such
// as SONAR") by making visible where simulated time and wall time go
// inside a campaign — queue wait vs. placement vs. preemption vs.
// compute vs. halo exchange.
//
// Every span carries two timelines: simulated seconds from the
// discrete-event clock of the producing subsystem (fleet scheduler,
// cloud provider), and wall time read from an injectable Clock (the
// internal/par pattern). Span IDs are derived deterministically from a
// seed and a start sequence number, so two runs under one seed produce
// byte-identical traces — the fleet scheduler's reproducibility contract
// extended to telemetry.
//
// Traces export as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing), JSONL dumps, or a fixed-width text summary; see
// export.go and cmd/trace.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts the wall clock behind span wall timestamps. Production
// tracers measure real time; deterministic harnesses inject a virtual
// clock so wall fields replay exactly (simulated timestamps are supplied
// by the caller and are always deterministic).
type Clock func() time.Time

// SpanID is a deterministic 64-bit span identifier. The zero value means
// "no span" (a root span's parent).
type SpanID uint64

// String renders the ID as 16 hex digits, or "" for the zero ID.
func (id SpanID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// TraceID is a deterministic 128-bit trace identifier grouping every
// span — across processes — that served one logical request. The zero
// value means "no trace". Locally rooted spans derive their trace ID
// from their own span ID (Hi = 0); spans started from a remote parent
// inherit the trace ID carried by the traceparent header, so a request
// that crosses the cluster router keeps one identity end to end.
type TraceID struct {
	Hi uint64
	Lo uint64
}

// IsZero reports whether the ID is the "no trace" value.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the ID as 32 hex digits, or "" for the zero ID.
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return fmt.Sprintf("%016x%016x", t.Hi, t.Lo)
}

// spanID mixes the tracer seed and the span's start sequence number
// through the SplitMix64 finalizer. Same seed + same start order = same
// IDs; the mixing keeps IDs from colliding across nearby seeds.
func spanID(seed int64, seq uint64) SpanID {
	x := uint64(seed)*0x9E3779B97F4A7C15 + (seq+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // reserve 0 for "no span"
	}
	return SpanID(x)
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Tracer collects spans. A nil *Tracer is a valid no-op: every method is
// nil-safe, so instrumented code needs no conditionals when tracing is
// off.
type Tracer struct {
	mu    sync.Mutex
	seed  int64
	seq   uint64
	now   Clock
	spans []*Span
}

// NewTracer creates a tracer whose span IDs derive from the seed.
func NewTracer(seed int64) *Tracer {
	return &Tracer{seed: seed, now: time.Now}
}

// SetClock replaces the wall clock behind span wall timestamps. Passing
// nil restores time.Now.
func (t *Tracer) SetClock(c Clock) {
	if t == nil {
		return
	}
	if c == nil {
		c = time.Now
	}
	t.mu.Lock()
	t.now = c
	t.mu.Unlock()
}

// Span is one traced operation: a named interval with a parent link,
// dual start/end timestamps, and attributes. All methods are safe on a
// nil *Span (the no-op span a nil Tracer hands out).
type Span struct {
	t         *Tracer
	id        SpanID
	parent    SpanID
	trace     TraceID
	name      string
	track     string
	simStart  float64 // simulated seconds
	simEnd    float64
	wallStart time.Time
	wallEnd   time.Time
	attrs     []Attr
	ended     bool
}

// Start opens a root span at the given simulated time. The span roots a
// fresh trace whose ID derives from the span's own deterministic ID.
func (t *Tracer) Start(name string, simS float64) *Span {
	return t.start(0, TraceID{}, "", name, simS)
}

// StartChild opens a span under parent (nil parent makes a root span).
// The child inherits the parent's track until SetTrack overrides it,
// and the parent's trace identity always.
func (t *Tracer) StartChild(parent *Span, name string, simS float64) *Span {
	var pid SpanID
	var trace TraceID
	track := ""
	if parent != nil {
		pid = parent.id
		trace = parent.trace
		track = parent.track
	}
	return t.start(pid, trace, track, name, simS)
}

// StartRemote opens a span whose parent lives in another process, as
// carried by a traceparent header: the new span's parent link is the
// remote span ID and its trace identity is the propagated trace ID, so
// multi-process exports stitch into one tree (see cmd/trace -merge).
func (t *Tracer) StartRemote(tp TraceParent, name string, simS float64) *Span {
	return t.start(tp.SpanID, tp.TraceID, "", name, simS)
}

func (t *Tracer) start(parent SpanID, trace TraceID, track, name string, simS float64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := spanID(t.seed, t.seq)
	if trace.IsZero() {
		trace = TraceID{Lo: uint64(id)}
	}
	s := &Span{
		t:         t,
		id:        id,
		parent:    parent,
		trace:     trace,
		name:      name,
		track:     track,
		simStart:  simS,
		simEnd:    simS,
		wallStart: t.now(),
	}
	t.seq++
	t.spans = append(t.spans, s)
	return s
}

// ID returns the span's deterministic identifier (0 on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the span's trace identity (zero on a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// TraceParent returns the context to propagate to a downstream process
// so its handler span becomes this span's child: this span's trace ID
// and its own span ID as the remote parent. Zero on a nil span.
func (s *Span) TraceParent() TraceParent {
	if s == nil {
		return TraceParent{}
	}
	return TraceParent{TraceID: s.trace, SpanID: s.id, Sampled: true}
}

// SetTrack assigns the span to a named exporter lane (a Perfetto
// thread). Spans without a track land on the "main" lane.
func (s *Span) SetTrack(track string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.track = track
	s.t.mu.Unlock()
}

// SetAttr appends one key/value annotation. Attributes keep insertion
// order, which the deterministic call sequence makes reproducible.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// SetAttrF formats a float attribute with %g, the canonical shortest
// round-trip form (stable across runs for equal values).
func (s *Span) SetAttrF(key string, v float64) {
	s.SetAttr(key, fmt.Sprintf("%g", v))
}

// End closes the span at the given simulated time. A second End is
// ignored; the first one wins.
func (s *Span) End(simS float64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.simEnd = simS
	s.wallEnd = s.t.now()
}

// SpanRecord is the exportable snapshot of one span.
type SpanRecord struct {
	ID          string  `json:"id"`
	Parent      string  `json:"parent,omitempty"`
	TraceID     string  `json:"trace,omitempty"`
	Name        string  `json:"name"`
	Track       string  `json:"track,omitempty"`
	SimStartS   float64 `json:"sim_start_s"`
	SimEndS     float64 `json:"sim_end_s"`
	WallStartNS int64   `json:"wall_start_ns,omitempty"`
	WallDurNS   int64   `json:"wall_dur_ns,omitempty"`
	Ended       bool    `json:"ended"`
	Attrs       []Attr  `json:"attrs,omitempty"`
}

// SimDurS returns the span's simulated duration in seconds.
func (r SpanRecord) SimDurS() float64 { return r.SimEndS - r.SimStartS }

// Attr returns the value of the first attribute with the given key, or
// "".
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Spans snapshots every span in start order. Unended spans report
// SimEndS == SimStartS and Ended == false. A nil tracer yields nil.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		r := SpanRecord{
			ID:          s.id.String(),
			Parent:      s.parent.String(),
			TraceID:     s.trace.String(),
			Name:        s.name,
			Track:       s.track,
			SimStartS:   s.simStart,
			SimEndS:     s.simEnd,
			WallStartNS: s.wallStart.UnixNano(),
			Ended:       s.ended,
			Attrs:       append([]Attr(nil), s.attrs...),
		}
		if s.ended {
			r.WallDurNS = s.wallEnd.Sub(s.wallStart).Nanoseconds()
		}
		out[i] = r
	}
	return out
}

// Len returns the number of started spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
