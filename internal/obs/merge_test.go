package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestMergeMetricsEmpty(t *testing.T) {
	got, err := MergeMetrics(nil, nil)
	if err != nil {
		t.Fatalf("merging empties: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("merging empties yielded %d metrics", len(got))
	}

	// Empty registry snapshots on either side are no-ops.
	r := NewRegistry()
	r.Counter("reqs", L("code", "200")).Add(3)
	snap := r.Snapshot()
	if got, err = MergeMetrics(snap, NewRegistry().Snapshot()); err != nil || !reflect.DeepEqual(got, snap) {
		t.Fatalf("merge with empty src changed dst: %v / %+v", err, got)
	}
	if got, err = MergeMetrics(NewRegistry().Snapshot(), snap); err != nil || !reflect.DeepEqual(got, snap) {
		t.Fatalf("merge into empty dst != src: %v / %+v", err, got)
	}
}

func TestMergeMetricsSums(t *testing.T) {
	a := NewRegistry()
	a.Counter("reqs", L("code", "200")).Add(5)
	a.Gauge("inflight").Set(2)
	a.Histogram("lat", []float64{0.1, 1}).Observe(0.05)
	b := NewRegistry()
	b.Counter("reqs", L("code", "200")).Add(7)
	b.Counter("reqs", L("code", "500")).Add(1)
	b.Gauge("inflight").Set(3)
	b.Histogram("lat", []float64{0.1, 1}).Observe(0.5)
	b.Histogram("lat", []float64{0.1, 1}).Observe(5)

	got, err := MergeMetrics(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	byKey := map[string]Metric{}
	for _, m := range got {
		byKey[metricLabel(m)] = m
	}
	if v := byKey[`reqs{code=200}`].Value; v != 12 {
		t.Errorf("counter sum %v, want 12", v)
	}
	if v := byKey[`reqs{code=500}`].Value; v != 1 {
		t.Errorf("new label set %v, want 1", v)
	}
	if v := byKey["inflight"].Value; v != 5 {
		t.Errorf("gauge sum %v, want 5 (gauges add on merge)", v)
	}
	h := byKey["lat"]
	if h.Count != 3 || h.Sum != 5.55 {
		t.Errorf("histogram count=%d sum=%v, want 3 / 5.55", h.Count, h.Sum)
	}
	if want := []uint64{1, 1, 1}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("bucket counts %v, want %v", h.Counts, want)
	}
}

func TestMergeMetricsRejectsMismatchedBuckets(t *testing.T) {
	a := NewRegistry()
	a.Histogram("lat", []float64{0.1, 1}).Observe(0.05)
	bad := NewRegistry()
	bad.Histogram("lat", []float64{0.2, 2}).Observe(0.05)

	dst := a.Snapshot()
	got, err := MergeMetrics(dst, bad.Snapshot())
	if err == nil {
		t.Fatalf("mismatched bucket layout accepted")
	}
	if !reflect.DeepEqual(got, dst) {
		t.Fatalf("rejected merge modified dst: %+v", got)
	}

	// Different bucket *count* is rejected too.
	short := NewRegistry()
	short.Histogram("lat", []float64{0.1}).Observe(0.05)
	if _, err := MergeMetrics(dst, short.Snapshot()); err == nil {
		t.Fatalf("mismatched bucket count accepted")
	}

	// Type collisions are rejected.
	c := NewRegistry()
	c.Counter("lat").Inc()
	if _, err := MergeMetrics(dst, c.Snapshot()); err == nil {
		t.Fatalf("counter merged into histogram")
	}
}

func TestMergeMetricsAtomicOnPartialFailure(t *testing.T) {
	// src carries one good metric and one bad one; the good one must
	// NOT land when the bad one is rejected.
	dst := NewRegistry()
	dst.Counter("reqs").Add(1)
	dst.Histogram("lat", []float64{0.1, 1}).Observe(0.05)
	src := NewRegistry()
	src.Counter("reqs").Add(100)
	src.Histogram("lat", []float64{9}).Observe(0.05)

	before := dst.Snapshot()
	got, err := MergeMetrics(before, src.Snapshot())
	if err == nil {
		t.Fatalf("bad snapshot accepted")
	}
	if !reflect.DeepEqual(got, before) {
		t.Fatalf("partial merge applied: %+v", got)
	}
}

func TestMergeMetricsMonotone(t *testing.T) {
	// Repeatedly merging successive cumulative snapshots must keep
	// counters non-decreasing in the aggregate.
	replica := NewRegistry()
	var agg []Metric
	last := -1.0
	for i := 0; i < 5; i++ {
		replica.Counter("reqs").Add(float64(i + 1))
		fresh, err := MergeMetrics(nil, replica.Snapshot())
		if err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
		agg = fresh
		if v := agg[0].Value; v < last {
			t.Fatalf("counter went backwards: %v after %v", v, last)
		} else {
			last = v
		}
	}
	if last != 15 {
		t.Fatalf("final counter %v, want 15", last)
	}
}

func TestMergeMetricsDoesNotAliasInputs(t *testing.T) {
	a := NewRegistry()
	a.Histogram("lat", []float64{0.1, 1}).Observe(0.05)
	dst := a.Snapshot()
	src := a.Snapshot()
	got, err := MergeMetrics(dst, src)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	got[0].Counts[0] = 999
	if dst[0].Counts[0] == 999 || src[0].Counts[0] == 999 {
		t.Fatalf("merged output aliases an input snapshot")
	}
}

func TestMergedQuantilesMatchSingleRun(t *testing.T) {
	// The acceptance criterion: the same observations split across N
	// replicas and merged must give the same quantiles as a single
	// registry seeing the whole stream.
	bounds := ExpBuckets(50e-6, 2, 25)
	single := NewRegistry()
	replicas := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	for i := 0; i < 300; i++ {
		v := 100e-6 * float64(1+i%50)
		single.Histogram("lat", bounds).Observe(v)
		replicas[i%3].Histogram("lat", bounds).Observe(v)
	}
	var merged []Metric
	var err error
	for _, r := range replicas {
		if merged, err = MergeMetrics(merged, r.Snapshot()); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	want := single.Snapshot()[0]
	got := merged[0]
	for _, q := range []float64{0.5, 0.9, 0.99} {
		wq, gq := want.Quantile(q), got.Quantile(q)
		if math.Abs(wq-gq) > 1e-12 {
			t.Errorf("q%.2f: merged %v, single %v", q, gq, wq)
		}
	}
	if got.Count != want.Count {
		t.Errorf("merged count %d, single %d", got.Count, want.Count)
	}
}

func TestTelemetrySnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_requests_total", L("code", "200"), L("endpoint", "/v1/predict")).Add(4)
	r.Histogram("serve_latency_seconds", ExpBuckets(50e-6, 2, 25)).Observe(0.003)
	snap := TelemetrySnapshot{Source: "r0", UptimeS: 12.5, Metrics: r.Snapshot()}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got TelemetrySnapshot
	if err := json.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, snap)
	}

	// Empty-registry snapshots survive the wire too.
	empty := TelemetrySnapshot{Source: "r1", Metrics: NewRegistry().Snapshot()}
	buf.Reset()
	if err := json.NewEncoder(&buf).Encode(empty); err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if err := json.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(got.Metrics) != 0 {
		t.Fatalf("empty snapshot decoded with %d metrics", len(got.Metrics))
	}
}
