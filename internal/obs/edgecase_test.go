package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// Exporter edge cases: empty span sets, instruments that never saw a
// sample, and traces whose simulated clock never left zero. These are
// the states a run produces when it fails early or does nothing, and
// the exporters must still emit well-formed output for them.

func TestChromeTraceEmptySpanSet(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("write empty: %v", err)
	}
	var raw struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	// Still a loadable trace: the process_name metadata event and nothing else.
	if len(raw.TraceEvents) != 1 || raw.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("empty trace events = %v, want single metadata event", raw.TraceEvents)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read empty: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace round-tripped %d spans", len(got))
	}
}

func TestAggregateAndSummaryEmptySpanSet(t *testing.T) {
	if aggs := AggregateSpans(nil); len(aggs) != 0 {
		t.Fatalf("AggregateSpans(nil) = %v", aggs)
	}
	out := RenderSummary(nil, nil)
	if !strings.Contains(out, "0 span(s)") {
		t.Fatalf("empty summary missing span count:\n%s", out)
	}
	if !strings.Contains(out, "makespan 0.00s") {
		t.Fatalf("empty summary makespan not zero:\n%s", out)
	}
	// No aggregate table header when there is nothing to tabulate.
	if strings.Contains(out, "self_sim_s") {
		t.Fatalf("empty summary rendered an aggregate table:\n%s", out)
	}
}

func TestMetricsWithNoSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total")
	r.Gauge("depth")
	r.Histogram("wait_s", []float64{1, 10})

	ms := r.Snapshot()
	if len(ms) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3 (unsampled instruments must still export)", len(ms))
	}
	for _, m := range ms {
		if m.Type == "histogram" {
			if m.Count != 0 {
				t.Fatalf("unsampled histogram count = %d", m.Count)
			}
			if q := m.Quantile(0.5); !math.IsNaN(q) {
				t.Fatalf("quantile of empty histogram = %v, want NaN", q)
			}
		} else if m.Value != 0 {
			t.Fatalf("unsampled %s %s value = %v", m.Type, m.Name, m.Value)
		}
	}

	var buf bytes.Buffer
	if err := WriteMetricsText(&buf, ms); err != nil {
		t.Fatalf("write text: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE events_total counter",
		"events_total 0",
		"depth 0",
		`wait_s_bucket{le="+Inf"} 0`,
		"wait_s_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// The text summary must tabulate the empty histogram without
	// crashing on its NaN quantiles.
	out := RenderSummary(nil, ms)
	if !strings.Contains(out, "wait_s") || !strings.Contains(out, "NaN") {
		t.Fatalf("summary of unsampled metrics:\n%s", out)
	}
}

func TestChromeTraceZeroSimClock(t *testing.T) {
	// A tracer whose simulated clock never advances: every span starts
	// and ends at sim time 0, so ts and dur are both zero.
	tr := NewTracer(7)
	tr.SetClock(fixedClock(1000))
	root := tr.Start("boot", 0)
	child := tr.StartChild(root, "init", 0)
	child.End(0)
	root.End(0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatalf("write: %v", err)
	}
	// ts and dur are pointer-typed exactly so a zero sim clock still
	// serializes them; omitempty on plain float64 would drop both and
	// make the trace unreadable.
	text := buf.String()
	if !strings.Contains(text, `"ts":0`) || !strings.Contains(text, `"dur":0`) {
		t.Fatalf("zero-clock trace dropped ts/dur:\n%s", text)
	}

	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read zero-clock trace: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost spans: %d", len(got))
	}
	for i, s := range got {
		if s.SimStartS != 0 || s.SimEndS != 0 {
			t.Fatalf("span %d sim times not zero: %+v", i, s)
		}
		if !s.Ended {
			t.Fatalf("span %d lost Ended on zero-duration round trip", i)
		}
	}

	// Zero-duration spans aggregate to zero self time, not NaN.
	aggs := AggregateSpans(tr.Spans())
	for _, a := range aggs {
		if a.SelfSimS != 0 || a.TotalSimS != 0 {
			t.Fatalf("zero-clock aggregate %+v", a)
		}
	}
}
