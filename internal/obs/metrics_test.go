package obs

import (
	"math"
	"sync"
	"testing"

	"repro/internal/units"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("kind", "spot"))
	c.Inc()
	c.Add(2)
	c.Add(-5)          // ignored
	c.Add(math.NaN())  // ignored
	c.Add(math.Inf(1)) // ignored
	if got := c.Value(); !units.ApproxEqual(got, 3, 1e-12) {
		t.Fatalf("counter value %g, want 3", got)
	}
	// Same name+labels returns the same instrument, label order ignored.
	if r.Counter("requests_total", L("kind", "spot")) != c {
		t.Fatalf("re-lookup returned a different counter")
	}
	two := r.Counter("x", L("a", "1"), L("b", "2"))
	if r.Counter("x", L("b", "2"), L("a", "1")) != two {
		t.Fatalf("label order changed instrument identity")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); !units.ApproxEqual(got, 3, 1e-12) {
		t.Fatalf("gauge value %g, want 3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	// Inclusive upper bounds: exactly 1.0 lands in bucket 0, the first
	// value above it in bucket 1, values above the last bound overflow.
	h.Observe(1.0)
	h.Observe(math.Nextafter(1.0, 2.0))
	h.Observe(2.0)
	h.Observe(2.0000001)
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.Inf(1))  // overflow bucket
	h.Observe(math.Inf(-1)) // first bucket
	h.Observe(math.NaN())   // dropped
	if h.Count() != 8 {
		t.Fatalf("count %d, want 8 (NaN dropped)", h.Count())
	}
	want := []uint64{4, 2, 2} // le=1: {1.0, 0, -3, -Inf}; le=2: {1.0...01, 2.0}; overflow: {2.0000001, +Inf}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (counts=%v)", i, h.counts[i], w, h.counts)
		}
	}
}

func TestHistogramRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("step_s", []float64{1, 2, 3})
	h2 := r.Histogram("step_s", []float64{9, 99}) // pre-existing keeps original bounds
	if h1 != h2 {
		t.Fatalf("same name returned different histograms")
	}
	if len(h1.bounds) != 3 {
		t.Fatalf("bounds overwritten on re-lookup: %v", h1.bounds)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Count() != 3 {
		t.Fatalf("merged count %d, want 3", a.Count())
	}
	if a.counts[0] != 1 || a.counts[1] != 1 || a.counts[2] != 1 {
		t.Fatalf("merged counts %v", a.counts)
	}
	bad := NewHistogram([]float64{1, 2, 3})
	if err := a.Merge(bad); err == nil {
		t.Fatalf("merge with mismatched bounds did not error")
	}
	if a.Count() != 3 {
		t.Fatalf("failed merge mutated the histogram: count %d", a.Count())
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // all in bucket le=1
	}
	snap := singleMetric(t, h)
	// All mass in [0,1]: p50 interpolates to the bucket midpoint.
	if got := snap.Quantile(0.5); !units.ApproxEqual(got, 0.5, 1e-9) {
		t.Fatalf("p50 = %g, want 0.5", got)
	}
	if got := snap.Quantile(1.0); !units.ApproxEqual(got, 1.0, 1e-9) {
		t.Fatalf("p100 = %g, want 1.0", got)
	}
	if !math.IsNaN(snap.Quantile(0)) || !math.IsNaN(snap.Quantile(1.5)) {
		t.Fatalf("out-of-range q did not return NaN")
	}

	// Overflow clamps to the last bound.
	o := NewHistogram([]float64{1})
	o.Observe(100)
	if got := singleMetric(t, o).Quantile(0.99); !units.ApproxEqual(got, 1, 1e-9) {
		t.Fatalf("overflow quantile = %g, want clamp to 1", got)
	}

	if !math.IsNaN(Metric{Type: "histogram"}.Quantile(0.5)) {
		t.Fatalf("empty histogram quantile is not NaN")
	}
	if !math.IsNaN(Metric{Type: "counter", Count: 1}.Quantile(0.5)) {
		t.Fatalf("non-histogram quantile is not NaN")
	}
}

// singleMetric snapshots a standalone histogram through a throwaway
// registry-shaped Metric.
func singleMetric(t *testing.T, h *Histogram) Metric {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	return Metric{
		Type:     "histogram",
		BucketLE: append([]float64(nil), h.bounds...),
		Counts:   append([]uint64(nil), h.counts...),
		Sum:      h.sum,
		Count:    h.n,
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() []Metric {
		r := NewRegistry()
		r.Counter("zeta").Inc()
		r.Gauge("alpha", L("x", "2")).Set(1)
		r.Gauge("alpha", L("x", "1")).Set(2)
		r.Histogram("mid", []float64{1}).Observe(0.5)
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("snapshot sizes %d/%d, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || metricLabel(a[i]) != metricLabel(b[i]) {
			t.Fatalf("snapshot order differs at %d: %q vs %q", i, metricLabel(a[i]), metricLabel(b[i]))
		}
	}
	if a[0].Name != "alpha" || a[0].Label("x") != "1" {
		t.Fatalf("snapshot not sorted: first is %q{x=%s}", a[0].Name, a[0].Label("x"))
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if err := h.Merge(NewHistogram(nil)); err != nil {
		t.Fatalf("nil histogram merge errored: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil instruments reported values")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot non-nil")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("ops_total").Inc()
				r.Histogram("lat_s", DefTimeBucketsS).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); !units.ApproxEqual(got, 800, 1e-9) {
		t.Fatalf("counter %g, want 800", got)
	}
	if got := r.Histogram("lat_s", nil).Count(); got != 800 {
		t.Fatalf("histogram count %d, want 800", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 3)
	want := []float64{1e-6, 1e-5, 1e-4}
	if len(b) != 3 {
		t.Fatalf("len %d", len(b))
	}
	for i := range want {
		if !units.ApproxEqual(b[i], want[i], 1e-15) {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}
