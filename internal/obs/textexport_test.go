package obs

import (
	"strings"
	"testing"
)

func TestWriteMetricsTextCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", L("endpoint", "/v1/predict"), L("code", "200")).Add(3)
	r.Counter("requests_total", L("endpoint", "/v1/predict"), L("code", "429")).Inc()
	r.Gauge("inflight").Set(2)

	var b strings.Builder
	if err := WriteMetricsText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{code="200",endpoint="/v1/predict"} 3`,
		`requests_total{code="429",endpoint="/v1/predict"} 1`,
		"# TYPE inflight gauge",
		"inflight 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family even with two label sets.
	if n := strings.Count(out, "# TYPE requests_total"); n != 1 {
		t.Errorf("requests_total TYPE header emitted %d times", n)
	}
}

func TestWriteMetricsTextHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := WriteMetricsText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMetricsTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird-name.total", L("path", `C:\tmp`), L("quote", `say "hi"`)).Inc()

	var b strings.Builder
	if err := WriteMetricsText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "weird_name_total") {
		t.Errorf("name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `path="C:\\tmp"`) {
		t.Errorf("backslash not escaped:\n%s", out)
	}
	if !strings.Contains(out, `quote="say \"hi\""`) {
		t.Errorf("quote not escaped:\n%s", out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x9": "ok_name:x9",
		"9starts":    "_starts",
		"a b-c":      "a_b_c",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
