package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Label is one dimension of a metric's identity. A metric instrument is
// identified by its name plus the set of its labels (order-insensitive;
// the registry canonicalizes by key).
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// canonLabels returns the sorted copy of labels and their canonical
// identity string. \x00/\x01 separators cannot collide with printable
// label content the way "|" or "," could.
func canonLabels(labels []Label) ([]Label, string) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	})
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(0x00)
		b.WriteString(l.Value)
		b.WriteByte(0x01)
	}
	return ls, b.String()
}

// Registry holds a process's metric instruments. It is injected into
// the subsystems that record metrics — there is no package-level
// default — and a nil *Registry is a valid no-op sink: every accessor
// returns a nil instrument whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// instrument carries the shared identity of a registered metric.
type instrument struct {
	name   string
	labels []Label // canonical order
	key    string
}

func newInstrument(name string, labels []Label) instrument {
	ls, canon := canonLabels(labels)
	return instrument{name: name, labels: ls, key: name + "\x02" + canon}
}

// Counter is a monotonically non-decreasing sum.
type Counter struct {
	inst instrument
	mu   sync.Mutex
	v    float64
}

// Counter returns (creating on first use) the counter with the given
// name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	in := newInstrument(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[in.key]
	if !ok {
		c = &Counter{inst: in}
		r.counters[in.key] = c
	}
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative, NaN and Inf deltas are ignored —
// a counter only moves forward by finite amounts.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Value returns the current sum.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can move both ways.
type Gauge struct {
	inst instrument
	mu   sync.Mutex
	v    float64
}

// Gauge returns (creating on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	in := newInstrument(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[in.key]
	if !ok {
		g = &Gauge{inst: in}
		r.gauges[in.key] = g
	}
	return g
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge's value.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket distribution. Buckets are inclusive upper
// bounds ("le" semantics): an observation lands in the first bucket
// whose bound is >= the value; values above the last bound land in the
// implicit overflow bucket.
type Histogram struct {
	inst   instrument
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last slot is the overflow bucket
	sum    float64
	n      uint64
}

// NewHistogram builds a standalone (unregistered) histogram — the
// lock-free-by-ownership accumulator pattern: give each goroutine its
// own and Merge them afterwards. Bounds are copied and sorted.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Histogram returns (creating on first use) the registered histogram
// with the given name, bucket bounds and labels. A pre-existing
// instrument keeps its original bounds; the bounds argument only shapes
// the first creation.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	in := newInstrument(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[in.key]
	if !ok {
		h = NewHistogram(bounds)
		h.inst = in
		r.hists[in.key] = h
	}
	return h
}

// Observe records one value. NaN observations are dropped (they carry
// no position on the axis); -Inf lands in the first bucket and +Inf in
// the overflow bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.counts[bucketIndex(h.bounds, v)]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// bucketIndex returns the index of the first bound >= v (le semantics),
// or len(bounds) for the overflow bucket.
func bucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// Merge folds another histogram with identical bounds into h. A bounds
// mismatch is reported as an error and leaves h unchanged.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	o.mu.Lock()
	oBounds := append([]float64(nil), o.bounds...)
	oCounts := append([]uint64(nil), o.counts...)
	oSum, oN := o.sum, o.n
	o.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(oBounds) != len(h.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(oBounds), len(h.bounds))
	}
	for i, b := range oBounds {
		//lint:ignore floateq bucket bounds are configuration constants, copied not computed; inequality means a real layout mismatch
		if b != h.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at bucket %d (%g vs %g)", i, b, h.bounds[i])
		}
	}
	for i, c := range oCounts {
		h.counts[i] += c
	}
	h.sum += oSum
	h.n += oN
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// ExpBuckets builds n bucket bounds growing geometrically from start by
// factor — the usual shape for latency distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	b := start
	for i := 0; i < n; i++ {
		out = append(out, b)
		b *= factor
	}
	return out
}

// DefTimeBucketsS is the default bucket layout for duration histograms:
// 1µs to 10s in decades, in seconds.
var DefTimeBucketsS = ExpBuckets(1e-6, 10, 8)

// Metric is the exportable snapshot of one instrument.
type Metric struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"` // "counter", "gauge" or "histogram"
	Labels []Label `json:"labels,omitempty"`

	// Value is the counter sum or gauge level.
	Value float64 `json:"value,omitempty"`

	// Histogram state: BucketLE holds the inclusive upper bounds,
	// Counts one slot per bound plus the trailing overflow bucket.
	BucketLE []float64 `json:"bucket_le,omitempty"`
	Counts   []uint64  `json:"counts,omitempty"`
	Sum      float64   `json:"sum,omitempty"`
	Count    uint64    `json:"count,omitempty"`
}

// Label returns the value of the named label, or "".
func (m Metric) Label(key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram metric
// by linear interpolation inside the covering bucket, the conventional
// fixed-bucket estimator. Observations in the overflow bucket clamp to
// the last bound. Returns NaN for empty or non-histogram metrics.
func (m Metric) Quantile(q float64) float64 {
	if m.Type != "histogram" || m.Count == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(m.Count)
	var cum float64
	for i, c := range m.Counts {
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		if i >= len(m.BucketLE) {
			return m.BucketLE[len(m.BucketLE)-1] // overflow: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = m.BucketLE[i-1]
		}
		hi := m.BucketLE[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	return m.BucketLE[len(m.BucketLE)-1]
}

// Snapshot exports every instrument, sorted by name then canonical
// label string, so equal registries render byte-identically. A nil
// registry yields nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type entry struct {
		key string
		m   Metric
	}
	var entries []entry
	for k, c := range r.counters {
		c.mu.Lock()
		entries = append(entries, entry{k, Metric{Name: c.inst.name, Type: "counter", Labels: c.inst.labels, Value: c.v}})
		c.mu.Unlock()
	}
	for k, g := range r.gauges {
		g.mu.Lock()
		entries = append(entries, entry{k, Metric{Name: g.inst.name, Type: "gauge", Labels: g.inst.labels, Value: g.v}})
		g.mu.Unlock()
	}
	for k, h := range r.hists {
		h.mu.Lock()
		entries = append(entries, entry{k, Metric{
			Name:     h.inst.name,
			Type:     "histogram",
			Labels:   h.inst.labels,
			BucketLE: append([]float64(nil), h.bounds...),
			Counts:   append([]uint64(nil), h.counts...),
			Sum:      h.sum,
			Count:    h.n,
		}})
		h.mu.Unlock()
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := make([]Metric, len(entries))
	for i, e := range entries {
		out[i] = e.m
	}
	return out
}
