package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/units"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Array Format wrapped in an object), as consumed by Perfetto and
// chrome://tracing. Spans map to "X" (complete) events; "M" metadata
// events name the process and the per-track threads.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	TsUS  *float64          `json:"ts,omitempty"`
	DurUS *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// DefaultTrack is the exporter lane for spans without an explicit track.
const DefaultTrack = "main"

// WriteChromeTrace writes spans as Chrome trace-event JSON. Timestamps
// are the spans' *simulated* microseconds — wall fields are deliberately
// excluded so same-seed traces are byte-identical regardless of the host
// (see DESIGN.md's dual-clock rules). Tracks become Perfetto threads in
// first-seen span order; span IDs, parents and attributes ride in args.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	tids := map[string]int{}
	var trackNames []string
	tidOf := func(track string) int {
		if track == "" {
			track = DefaultTrack
		}
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
			trackNames = append(trackNames, track)
		}
		return id
	}

	var events []chromeEvent
	for _, s := range spans {
		tid := tidOf(s.Track)
		ts := units.SecondsToMicros(s.SimStartS)
		dur := units.SecondsToMicros(s.SimDurS())
		args := map[string]string{"id": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		if s.TraceID != "" {
			args["trace"] = s.TraceID
		}
		if !s.Ended {
			args["unended"] = "true"
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Cat:   "sim",
			Ph:    "X",
			TsUS:  &ts,
			DurUS: &dur,
			PID:   1,
			TID:   tid,
			Args:  args,
		})
	}

	// Metadata first: process name, then one thread_name per track in
	// first-seen order (which span order makes deterministic).
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "repro"},
	}}
	for _, track := range trackNames {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[track],
			Args: map[string]string{"name": track},
		})
	}

	trace := chromeTrace{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// ReadChromeTrace parses Chrome trace-event JSON written by
// WriteChromeTrace back into span records (metadata events are used for
// track names, everything else must be well-formed "X" events). It
// doubles as a structural validator for exported traces.
func ReadChromeTrace(r io.Reader) ([]SpanRecord, error) {
	var trace chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&trace); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	tracks := map[int]string{}
	var spans []SpanRecord
	for i, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				tracks[e.TID] = e.Args["name"]
			}
		case "X":
			//lint:ignore floateq nil-pointer presence test on optional fields, not a value comparison
			if e.TsUS == nil || e.DurUS == nil {
				return nil, fmt.Errorf("obs: chrome event %d (%q) is missing ts or dur", i, e.Name)
			}
			if e.Name == "" {
				return nil, fmt.Errorf("obs: chrome event %d has no name", i)
			}
			s := SpanRecord{
				Name:      e.Name,
				Track:     tracks[e.TID],
				SimStartS: units.MicrosToSeconds(*e.TsUS),
				Ended:     true,
			}
			s.SimEndS = s.SimStartS + units.MicrosToSeconds(*e.DurUS)
			for _, k := range sortedKeys(e.Args) {
				v := e.Args[k]
				switch k {
				case "id":
					s.ID = v
				case "parent":
					s.Parent = v
				case "trace":
					s.TraceID = v
				case "unended":
					s.Ended = false
				default:
					s.Attrs = append(s.Attrs, Attr{Key: k, Value: v})
				}
			}
			if s.ID == "" {
				return nil, fmt.Errorf("obs: chrome event %d (%q) has no span id", i, e.Name)
			}
			spans = append(spans, s)
		default:
			return nil, fmt.Errorf("obs: chrome event %d has unsupported phase %q", i, e.Ph)
		}
	}
	return spans, nil
}

// sortedKeys returns a map's keys in sorted order (JSON round-trips
// lose the original attribute order; sorting keeps output stable).
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSONL writes one compact JSON object per line. It is the shared
// line-oriented encoder for span dumps, metric snapshots and fleet
// event logs.
func WriteJSONL[T any](w io.Writer, items []T) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a JSONL span dump written by WriteJSONL.
func ReadSpansJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s SpanRecord
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading jsonl: %w", err)
	}
	return out, nil
}

// ReadSpans sniffs the input format — a Chrome trace JSON object or a
// JSONL span dump — and parses accordingly.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("obs: empty trace input")
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			if _, err := br.ReadByte(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	head, _ := br.Peek(256)
	if strings.Contains(string(head), "traceEvents") {
		return ReadChromeTrace(br)
	}
	return ReadSpansJSONL(br)
}

// SpanAgg is the per-name aggregate of a trace: how many spans carried
// the name, their total simulated duration, and their self time (total
// minus the time covered by child spans) — the column a bottleneck hunt
// sorts by.
type SpanAgg struct {
	Name      string
	Count     int
	TotalSimS float64
	SelfSimS  float64
}

// AggregateSpans groups spans by name, computing total and self
// simulated time. Self time subtracts each span's direct children,
// clamped at zero so overlapping children cannot drive it negative.
// Results sort by descending self time, then name.
func AggregateSpans(spans []SpanRecord) []SpanAgg {
	childDur := map[string]float64{} // parent ID -> sum of child durations
	for _, s := range spans {
		if s.Parent != "" {
			childDur[s.Parent] += s.SimDurS()
		}
	}
	byName := map[string]*SpanAgg{}
	order := []string{}
	for _, s := range spans {
		a, ok := byName[s.Name]
		if !ok {
			a = &SpanAgg{Name: s.Name}
			byName[s.Name] = a
			order = append(order, s.Name)
		}
		a.Count++
		dur := s.SimDurS()
		a.TotalSimS += dur
		self := dur - childDur[s.ID]
		if self < 0 {
			self = 0
		}
		a.SelfSimS += self
	}
	out := make([]SpanAgg, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfSimS > out[j].SelfSimS {
			return true
		}
		if out[i].SelfSimS < out[j].SelfSimS {
			return false
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderSummary renders the fixed-width text report: top span names by
// self time, then histogram quantiles, then counters and gauges.
// Metrics may be nil for a spans-only summary.
func RenderSummary(spans []SpanRecord, metrics []Metric) string {
	var b strings.Builder

	var makespan float64
	for _, s := range spans {
		if s.SimEndS > makespan {
			makespan = s.SimEndS
		}
	}
	fmt.Fprintf(&b, "trace: %d span(s), makespan %.2fs (simulated)\n", len(spans), makespan)

	aggs := AggregateSpans(spans)
	if len(aggs) > 0 {
		fmt.Fprintf(&b, "\n%-28s %7s %14s %14s %7s\n", "span", "count", "total_sim_s", "self_sim_s", "self%")
		var totalSelf float64
		for _, a := range aggs {
			totalSelf += a.SelfSimS
		}
		for _, a := range aggs {
			pct := 0.0
			if totalSelf > 0 {
				pct = a.SelfSimS / totalSelf * 100
			}
			fmt.Fprintf(&b, "%-28s %7d %14.2f %14.2f %6.1f%%\n", a.Name, a.Count, a.TotalSimS, a.SelfSimS, pct)
		}
	}

	var hists, scalars []Metric
	for _, m := range metrics {
		if m.Type == "histogram" {
			hists = append(hists, m)
		} else {
			scalars = append(scalars, m)
		}
	}
	if len(hists) > 0 {
		fmt.Fprintf(&b, "\n%-36s %8s %12s %12s %12s\n", "histogram", "count", "p50", "p90", "p99")
		for _, m := range hists {
			fmt.Fprintf(&b, "%-36s %8d %12.4g %12.4g %12.4g\n",
				metricLabel(m), m.Count, m.Quantile(0.50), m.Quantile(0.90), m.Quantile(0.99))
		}
	}
	if len(scalars) > 0 {
		fmt.Fprintf(&b, "\n%-36s %-9s %14s\n", "metric", "type", "value")
		for _, m := range scalars {
			fmt.Fprintf(&b, "%-36s %-9s %14.4f\n", metricLabel(m), m.Type, m.Value)
		}
	}
	return b.String()
}

// metricLabel renders "name{k=v,...}" for display.
func metricLabel(m Metric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	parts := make([]string, len(m.Labels))
	for i, l := range m.Labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return m.Name + "{" + strings.Join(parts, ",") + "}"
}
