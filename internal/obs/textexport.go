package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// This file renders a metrics snapshot in the Prometheus text exposition
// format, the lingua franca of scrape-based monitoring: one `# TYPE`
// header per instrument family, then one line per label set. Histograms
// expand into cumulative `_bucket` series (le-labeled, with the +Inf
// overflow), `_sum`, and `_count`, so standard dashboards can derive
// quantiles. The output is deterministic for a given snapshot: Snapshot
// already sorts instruments, and label sets render in canonical order.

// sanitizeMetricName maps an instrument name onto the exposition
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other rune with '_'.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline per the
// exposition format.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// formatExpoValue renders a sample value; +Inf/-Inf/NaN use the
// exposition spellings.
func formatExpoValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// labelString renders a label set (plus optional extra labels) as
// {k="v",...}, or "" when empty.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, 0, len(all))
	for _, l := range all {
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", sanitizeMetricName(l.Key), escapeLabelValue(l.Value)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteMetricsText writes the snapshot in the Prometheus text
// exposition format. Instruments sharing a name emit one TYPE header
// for the first occurrence only.
func WriteMetricsText(w io.Writer, ms []Metric) error {
	typed := map[string]bool{}
	for _, m := range ms {
		name := sanitizeMetricName(m.Name)
		if !typed[name] {
			typed[name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Type); err != nil {
				return err
			}
		}
		switch m.Type {
		case "histogram":
			var cum uint64
			for i, c := range m.Counts {
				cum += c
				le := "+Inf"
				if i < len(m.BucketLE) {
					le = formatExpoValue(m.BucketLE[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					name, labelString(m.Labels, L("le", le)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(m.Labels), formatExpoValue(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(m.Labels), m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labelString(m.Labels), formatExpoValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
