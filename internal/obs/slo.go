package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// SLO is one declarative service-level objective evaluated over a
// sliding window of the aggregated telemetry stream. Two kinds are
// supported:
//
//   - availability: at least TargetAvailability of requests in the
//     window succeed (LatencyBoundS == 0);
//   - latency: at least LatencyQuantile of requests in the window
//     complete within LatencyBoundS (LatencyBoundS > 0).
//
// Both reduce to a bad-fraction against an error budget: for a target
// t, the allowed bad fraction is 1-t, and the burn rate is
// badFraction/(1-t) — burn 1.0 exactly spends the budget, burn ≥
// BurnThreshold fires the alert. The latency objective is evaluated on
// histogram buckets, so "within LatencyBoundS" means "in a bucket
// whose upper bound is ≤ LatencyBoundS" — exact to bucket resolution.
type SLO struct {
	Name string `json:"name"`

	// TargetAvailability is the availability objective in (0,1), e.g.
	// 0.999. Used when LatencyBoundS == 0.
	TargetAvailability float64 `json:"target_availability,omitempty"`

	// LatencyQuantile is the fraction of requests (0,1) that a latency
	// objective requires to finish within the bound.
	LatencyQuantile float64 `json:"latency_quantile,omitempty"`

	// LatencyBoundS is that bound in seconds; > 0 makes this a latency
	// objective.
	LatencyBoundS float64 `json:"latency_bound_s,omitempty"`

	// WindowS is the sliding-window length in seconds.
	WindowS float64 `json:"window_s"`

	// BurnThreshold is the burn rate at which the alert fires;
	// 0 means 1 (alert exactly when the error budget burns faster
	// than it accrues).
	BurnThreshold float64 `json:"burn_threshold,omitempty"`
}

// IsLatency reports whether the objective is a latency SLO.
func (s SLO) IsLatency() bool { return s.LatencyBoundS > 0 }

// target returns the objective's good-fraction target.
func (s SLO) target() float64 {
	if s.IsLatency() {
		return s.LatencyQuantile
	}
	return s.TargetAvailability
}

// burnThreshold returns the effective firing threshold.
func (s SLO) burnThreshold() float64 {
	if s.BurnThreshold > 0 {
		return s.BurnThreshold
	}
	return 1
}

// DefaultSLOs returns the stock objectives the cluster router tracks
// when none are configured: three-nines availability and a 250 ms p99,
// both over 5-minute windows.
func DefaultSLOs() []SLO {
	return []SLO{
		{Name: "availability", TargetAvailability: 0.999, WindowS: 300},
		{Name: "latency-p99", LatencyQuantile: 0.99, LatencyBoundS: 0.25, WindowS: 300},
	}
}

// SLOObs is one cumulative observation of the request stream at a
// point in time: totals since process start, not deltas. The tracker
// differences consecutive observations itself, which makes feeding it
// idempotent snapshots (scrapes) safe.
type SLOObs struct {
	AtS    float64 // observation time, seconds on the tracker's clock
	Total  float64 // cumulative requests
	Errors float64 // cumulative failed requests

	// Latency histogram state, cumulative (bounds + one overflow slot).
	LatBounds []float64
	LatCounts []uint64
	LatCount  uint64
}

// RequestObs derives a cumulative SLOObs from a metric snapshot: the
// request counter (summed across label sets; a numeric `code` label ≥
// 500, or a non-numeric one, counts as an error) and the latency
// histogram (merged across label sets sharing the first-seen bucket
// layout). This is the bridge from serve's RED instruments to the SLO
// stream.
func RequestObs(atS float64, metrics []Metric, requestsMetric, latencyMetric string) SLOObs {
	o := SLOObs{AtS: atS}
	for _, m := range metrics {
		switch {
		case m.Name == requestsMetric && m.Type == "counter":
			o.Total += m.Value
			code := m.Label("code")
			if code != "" {
				n, err := strconv.Atoi(code)
				if err != nil || n >= 500 {
					o.Errors += m.Value
				}
			}
		case m.Name == latencyMetric && m.Type == "histogram":
			if o.LatBounds == nil {
				o.LatBounds = append([]float64(nil), m.BucketLE...)
				o.LatCounts = make([]uint64, len(m.Counts))
			}
			if len(m.Counts) != len(o.LatCounts) {
				continue // foreign layout; availability math still holds
			}
			for i, c := range m.Counts {
				o.LatCounts[i] += c
			}
			o.LatCount += m.Count
		}
	}
	return o
}

// SLOAlert is one deterministic alert transition. State is "firing"
// when the burn rate crosses the threshold and "resolved" when it
// drops back; each crossing emits exactly one event.
type SLOAlert struct {
	SLO         string  `json:"slo"`
	State       string  `json:"state"` // "firing" or "resolved"
	AtS         float64 `json:"at_s"`
	BurnRate    float64 `json:"burn_rate"`
	BadFraction float64 `json:"bad_fraction"`
}

// SLOStatus is the current evaluation of one objective, for dashboards
// and fleet reports.
type SLOStatus struct {
	SLO         SLO     `json:"slo"`
	WindowTotal float64 `json:"window_total"`
	WindowBad   float64 `json:"window_bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
	Firing      bool    `json:"firing"`
}

// SLOTracker evaluates a set of objectives over a sliding window of
// cumulative observations and emits exactly-once alert transitions.
// Deterministic by construction: same observation sequence, same
// alerts. Safe for concurrent use.
type SLOTracker struct {
	mu      sync.Mutex
	slos    []SLO
	hist    []SLOObs // ascending AtS
	firing  map[string]bool
	alerts  []SLOAlert
	maxWinS float64
}

// NewSLOTracker builds a tracker over the given objectives. An empty
// or nil slice yields a tracker that observes without ever alerting.
func NewSLOTracker(slos []SLO) *SLOTracker {
	t := &SLOTracker{
		slos:   append([]SLO(nil), slos...),
		firing: make(map[string]bool),
	}
	for _, s := range t.slos {
		if s.WindowS > t.maxWinS {
			t.maxWinS = s.WindowS
		}
	}
	return t
}

// Observe feeds one cumulative observation and returns the alert
// transitions it caused (usually none). Observations must arrive in
// non-decreasing AtS order; an out-of-order sample is dropped.
func (t *SLOTracker) Observe(o SLOObs) []SLOAlert {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.hist); n > 0 && o.AtS < t.hist[n-1].AtS {
		return nil
	}
	t.hist = append(t.hist, o)
	t.prune(o.AtS)

	var out []SLOAlert
	for _, s := range t.slos {
		st := t.evaluate(s, o.AtS)
		// Fire only on windows that saw traffic: an empty window has
		// no evidence either way and must not flap the alert.
		if st.WindowTotal <= 0 {
			continue
		}
		was := t.firing[s.Name]
		if !was && st.BurnRate >= s.burnThreshold() {
			t.firing[s.Name] = true
			a := SLOAlert{SLO: s.Name, State: "firing", AtS: o.AtS, BurnRate: st.BurnRate, BadFraction: st.BadFraction}
			t.alerts = append(t.alerts, a)
			out = append(out, a)
		} else if was && st.BurnRate < s.burnThreshold() {
			t.firing[s.Name] = false
			a := SLOAlert{SLO: s.Name, State: "resolved", AtS: o.AtS, BurnRate: st.BurnRate, BadFraction: st.BadFraction}
			t.alerts = append(t.alerts, a)
			out = append(out, a)
		}
	}
	return out
}

// prune drops history older than the widest window, keeping the newest
// sample at or before the window start — it is the baseline the next
// evaluation differences against.
func (t *SLOTracker) prune(nowS float64) {
	cutoff := nowS - t.maxWinS
	keep := 0
	for keep < len(t.hist)-1 && t.hist[keep+1].AtS <= cutoff {
		keep++
	}
	if keep > 0 {
		t.hist = append(t.hist[:0], t.hist[keep:]...)
	}
}

// evaluate computes one objective's window state at time nowS. Caller
// holds t.mu.
func (t *SLOTracker) evaluate(s SLO, nowS float64) SLOStatus {
	st := SLOStatus{SLO: s, Firing: t.firing[s.Name]}
	if len(t.hist) == 0 {
		return st
	}
	cur := t.hist[len(t.hist)-1]

	// Baseline: the newest sample at or before the window start. If
	// the window reaches past recorded history, difference against the
	// zero origin (cumulative counters start at zero).
	start := nowS - s.WindowS
	var base SLOObs
	for i := len(t.hist) - 1; i >= 0; i-- {
		if t.hist[i].AtS <= start {
			base = t.hist[i]
			break
		}
	}

	var total, bad float64
	if s.IsLatency() {
		total = float64(cur.LatCount) - float64(base.LatCount)
		good := latGood(cur, s.LatencyBoundS)
		if base.LatCounts != nil {
			good -= latGood(base, s.LatencyBoundS)
		}
		bad = total - good
	} else {
		total = cur.Total - base.Total
		bad = cur.Errors - base.Errors
	}
	if total < 0 || bad < 0 { // counter reset upstream; skip the window
		return st
	}
	st.WindowTotal = total
	st.WindowBad = bad
	if total > 0 {
		st.BadFraction = bad / total
	}
	allowed := 1 - s.target()
	if allowed > 0 && total > 0 {
		st.BurnRate = st.BadFraction / allowed
	}
	return st
}

// latGood counts cumulative observations at or under the bound: the
// buckets whose upper bound is ≤ boundS.
func latGood(o SLOObs, boundS float64) float64 {
	var good uint64
	for i, b := range o.LatBounds {
		if b > boundS {
			break
		}
		good += o.LatCounts[i]
	}
	return float64(good)
}

// Status returns the current evaluation of every objective, in
// configuration order.
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var nowS float64
	if len(t.hist) > 0 {
		nowS = t.hist[len(t.hist)-1].AtS
	}
	out := make([]SLOStatus, len(t.slos))
	for i, s := range t.slos {
		out[i] = t.evaluate(s, nowS)
	}
	return out
}

// Alerts returns every alert transition so far, in emission order.
func (t *SLOTracker) Alerts() []SLOAlert {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SLOAlert(nil), t.alerts...)
}

// String renders an alert as a stable single line for logs and
// reports.
func (a SLOAlert) String() string {
	return fmt.Sprintf("slo %s %s at %.3fs (burn %.2f, bad %.4f)", a.SLO, a.State, a.AtS, a.BurnRate, a.BadFraction)
}

// SortAlerts orders alerts by time then SLO name then state — the
// canonical order for reports that merge alert streams.
func SortAlerts(alerts []SLOAlert) {
	sort.SliceStable(alerts, func(i, j int) bool {
		if alerts[i].AtS < alerts[j].AtS {
			return true
		}
		if alerts[j].AtS < alerts[i].AtS {
			return false
		}
		if alerts[i].SLO != alerts[j].SLO {
			return alerts[i].SLO < alerts[j].SLO
		}
		return alerts[i].State < alerts[j].State
	})
}
