package obs

import (
	"strings"
	"testing"
)

// stitchedRun simulates a router process and a replica process serving
// one request, with the trace context crossing via a traceparent
// header, and returns the merged span records.
func stitchedRun() []SpanRecord {
	router := NewTracer(1)
	router.SetClock(fixedClock(1000))
	req := router.Start("router /v1/predict", 0)
	fwd := router.StartChild(req, "forward r0", 0.001)
	fwd.SetAttr("replica", "r0")

	header := fwd.TraceParent().String()
	tp, _ := ParseTraceParent(header)

	replica := NewTracer(2)
	replica.SetClock(fixedClock(1000))
	h := replica.StartRemote(tp, "http /v1/predict", 0)
	h.End(0.01)

	fwd.End(0.012)
	req.End(0.013)

	return append(router.Spans(), replica.Spans()...)
}

func TestRenderSpanTreeStitches(t *testing.T) {
	out := RenderSpanTree(stitchedRun())

	// One trace header, with router -> forward -> handler nesting.
	if strings.Count(out, "trace ") != 1 {
		t.Fatalf("expected one stitched trace, got:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "  router /v1/predict") {
		t.Errorf("root line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    forward r0") {
		t.Errorf("forward not nested under router: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "      http /v1/predict") {
		t.Errorf("handler not nested under forward: %q", lines[3])
	}
	if !strings.Contains(lines[2], "replica=r0") {
		t.Errorf("attrs missing from %q", lines[2])
	}
}

func TestRenderSpanTreeByteIdenticalAcrossRuns(t *testing.T) {
	a := RenderSpanTree(stitchedRun())
	b := RenderSpanTree(stitchedRun())
	if a != b {
		t.Fatalf("same-seed stitched trees differ:\n%s\nvs\n%s", a, b)
	}
}

func TestRenderSpanTreeOrphanParent(t *testing.T) {
	// A replica export merged WITHOUT the router export: the handler's
	// parent span is absent, so it renders as a root with a note.
	tr := NewTracer(2)
	tr.SetClock(fixedClock(1))
	h := tr.StartRemote(TraceParent{TraceID: TraceID{Lo: 7}, SpanID: 9, Sampled: true}, "http /v1/predict", 0)
	h.End(1)
	out := RenderSpanTree(tr.Spans())
	if !strings.Contains(out, "remote parent 0000000000000009") {
		t.Fatalf("orphan span lost its remote-parent note:\n%s", out)
	}
	if !strings.Contains(out, "trace 00000000000000000000000000000007") {
		t.Fatalf("trace grouping missing:\n%s", out)
	}
}

func TestRenderSpanTreePrePropagationSpans(t *testing.T) {
	// Records without trace IDs (old exports) group per root span.
	spans := []SpanRecord{
		{ID: "aa", Name: "one", Ended: true},
		{ID: "bb", Parent: "aa", Name: "two", Ended: false},
	}
	out := RenderSpanTree(spans)
	if !strings.Contains(out, "trace aa\n") {
		t.Fatalf("fallback grouping missing:\n%s", out)
	}
	if !strings.Contains(out, "(unended)") {
		t.Fatalf("unended marker missing:\n%s", out)
	}
}

func TestRenderSpanTreeCycleSafe(t *testing.T) {
	spans := []SpanRecord{
		{ID: "aa", Parent: "bb", Name: "a", Ended: true},
		{ID: "bb", Parent: "aa", Name: "b", Ended: true},
		{ID: "cc", Parent: "cc", Name: "self", Ended: true},
	}
	// Must terminate; cyclic spans have no root and may be omitted.
	_ = RenderSpanTree(spans)
}
