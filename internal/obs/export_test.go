package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/units"
)

// sampleTrace builds a small deterministic trace: a root with two
// children on separate tracks, one span left unended.
func sampleTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer(11)
	tr.SetClock(fixedClock(1000))
	root := tr.Start("campaign", 0)
	a := tr.StartChild(root, "job", 1)
	a.SetTrack("job:aorta")
	a.SetAttr("system", "CPU")
	a.End(4)
	b := tr.StartChild(root, "job", 2)
	b.SetTrack("job:valve")
	b.End(9)
	tr.Start("orphan", 5) // never ended
	root.End(10)
	return tr
}

func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleTrace(t).Spans()); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Structural schema assertions on the raw JSON: Perfetto needs a
	// traceEvents array whose entries carry ph, and "X" events carry
	// name/ts/dur/pid/tid.
	var raw struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(raw.TraceEvents) == 0 {
		t.Fatalf("no traceEvents")
	}
	sawMeta, sawX := 0, 0
	for i, e := range raw.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "M":
			sawMeta++
		case "X":
			sawX++
			for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := e[k]; !ok {
					t.Fatalf("X event %d missing %q: %v", i, k, e)
				}
			}
		default:
			t.Fatalf("event %d has unexpected ph %q", i, ph)
		}
	}
	if sawX != 4 {
		t.Fatalf("want 4 X events, got %d", sawX)
	}
	// process_name + one thread_name per track (main, job:aorta, job:valve).
	if sawMeta != 4 {
		t.Fatalf("want 4 metadata events, got %d", sawMeta)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	spans := sampleTrace(t).Spans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip lost spans: %d vs %d", len(got), len(spans))
	}
	for i := range spans {
		w, g := spans[i], got[i]
		if g.ID != w.ID || g.Parent != w.Parent || g.Name != w.Name || g.Ended != w.Ended {
			t.Fatalf("span %d identity drifted:\n want %+v\n got  %+v", i, w, g)
		}
		wantTrack := w.Track
		if wantTrack == "" {
			wantTrack = DefaultTrack
		}
		if g.Track != wantTrack {
			t.Fatalf("span %d track %q, want %q", i, g.Track, wantTrack)
		}
		if !units.ApproxEqual(g.SimStartS, w.SimStartS, 1e-9) || !units.ApproxEqual(g.SimEndS, w.SimEndS, 1e-9) {
			t.Fatalf("span %d sim times drifted: %+v vs %+v", i, g, w)
		}
		if w.Attr("system") != g.Attr("system") {
			t.Fatalf("span %d attr drifted", i)
		}
	}
}

func TestChromeTraceDeterministicBytes(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, sampleTrace(t).Spans()); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatalf("same-seed chrome traces are not byte-identical")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	spans := sampleTrace(t).Spans()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatalf("write: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(spans) {
		t.Fatalf("%d lines for %d spans", len(lines), len(spans))
	}
	got, err := ReadSpansJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip lost spans")
	}
	for i := range spans {
		if got[i].ID != spans[i].ID || got[i].WallStartNS != spans[i].WallStartNS {
			t.Fatalf("span %d drifted:\n want %+v\n got  %+v", i, spans[i], got[i])
		}
	}
}

func TestReadSpansSniffsFormat(t *testing.T) {
	spans := sampleTrace(t).Spans()

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, spans); err != nil {
		t.Fatalf("write chrome: %v", err)
	}
	fromChrome, err := ReadSpans(bytes.NewReader(chrome.Bytes()))
	if err != nil {
		t.Fatalf("sniff chrome: %v", err)
	}

	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, spans); err != nil {
		t.Fatalf("write jsonl: %v", err)
	}
	fromJSONL, err := ReadSpans(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("sniff jsonl: %v", err)
	}

	if len(fromChrome) != len(spans) || len(fromJSONL) != len(spans) {
		t.Fatalf("sniffed reads lost spans: chrome=%d jsonl=%d want=%d",
			len(fromChrome), len(fromJSONL), len(spans))
	}
	if _, err := ReadSpans(strings.NewReader("   ")); err == nil {
		t.Fatalf("blank input did not error")
	}
}

func TestAggregateSpansSelfTime(t *testing.T) {
	spans := sampleTrace(t).Spans()
	aggs := AggregateSpans(spans)
	byName := map[string]SpanAgg{}
	for _, a := range aggs {
		byName[a.Name] = a
	}
	// campaign: dur 10, children 3+7 => self 0.
	c := byName["campaign"]
	if c.Count != 1 || !units.ApproxEqual(c.TotalSimS, 10, 1e-9) || !units.ApproxEqual(c.SelfSimS, 0, 1e-9) {
		t.Fatalf("campaign agg %+v", c)
	}
	// job: two spans, durations 3 and 7, no children => self 10.
	j := byName["job"]
	if j.Count != 2 || !units.ApproxEqual(j.SelfSimS, 10, 1e-9) {
		t.Fatalf("job agg %+v", j)
	}
	// Sorted by self time descending: job first.
	if aggs[0].Name != "job" {
		t.Fatalf("aggs not sorted by self time: %+v", aggs)
	}
}

func TestRenderSummary(t *testing.T) {
	tr := sampleTrace(t)
	r := NewRegistry()
	r.Counter("fleet_preemptions_total").Add(3)
	h := r.Histogram("fleet_queue_wait_s", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)

	out := RenderSummary(tr.Spans(), r.Snapshot())
	for _, want := range []string{"campaign", "job", "fleet_preemptions_total", "fleet_queue_wait_s", "p50", "self_sim_s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Spans-only summary must work with nil metrics.
	if s := RenderSummary(tr.Spans(), nil); !strings.Contains(s, "span") {
		t.Fatalf("spans-only summary broken:\n%s", s)
	}
}

func TestMetricLabelRendering(t *testing.T) {
	m := Metric{Name: "x", Labels: []Label{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}}
	if got := metricLabel(m); got != "x{a=1,b=2}" {
		t.Fatalf("metricLabel = %q", got)
	}
	if got := metricLabel(Metric{Name: "plain"}); got != "plain" {
		t.Fatalf("metricLabel = %q", got)
	}
}
