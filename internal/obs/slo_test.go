package obs

import (
	"testing"
)

// obsAt builds a cumulative availability observation.
func obsAt(atS, total, errors float64) SLOObs {
	return SLOObs{AtS: atS, Total: total, Errors: errors}
}

func TestSLOAvailabilityFiresExactlyOnce(t *testing.T) {
	tr := NewSLOTracker([]SLO{{Name: "avail", TargetAvailability: 0.9, WindowS: 100}})

	// Healthy traffic: no alerts.
	if al := tr.Observe(obsAt(10, 100, 0)); len(al) != 0 {
		t.Fatalf("healthy window alerted: %+v", al)
	}
	// Error burst pushes bad fraction over 10%: fires once...
	al := tr.Observe(obsAt(20, 200, 50))
	if len(al) != 1 || al[0].State != "firing" || al[0].SLO != "avail" {
		t.Fatalf("expected one firing alert, got %+v", al)
	}
	// ...and stays silent while still burning (no re-fire).
	if al := tr.Observe(obsAt(30, 250, 80)); len(al) != 0 {
		t.Fatalf("re-fired while already firing: %+v", al)
	}
	// Recovery: errors stop, window slides past the burst — resolves once.
	var resolved []SLOAlert
	for at := 40.0; at <= 160; at += 10 {
		resolved = append(resolved, tr.Observe(obsAt(at, 250+(at-30)*10, 80))...)
	}
	if len(resolved) != 1 || resolved[0].State != "resolved" {
		t.Fatalf("expected exactly one resolved alert, got %+v", resolved)
	}
	// Full transition log: firing then resolved, nothing else.
	all := tr.Alerts()
	if len(all) != 2 || all[0].State != "firing" || all[1].State != "resolved" {
		t.Fatalf("alert log %+v", all)
	}
}

func TestSLOLatencyBurnRate(t *testing.T) {
	bounds := []float64{0.1, 0.25, 1}
	slo := SLO{Name: "p99", LatencyQuantile: 0.99, LatencyBoundS: 0.25, WindowS: 100}
	tr := NewSLOTracker([]SLO{slo})

	mk := func(atS float64, counts []uint64) SLOObs {
		var n uint64
		for _, c := range counts {
			n += c
		}
		return SLOObs{AtS: atS, LatBounds: bounds, LatCounts: counts, LatCount: n}
	}
	// 100 requests all under 250 ms: fine.
	if al := tr.Observe(mk(10, []uint64{90, 10, 0, 0})); len(al) != 0 {
		t.Fatalf("fast traffic alerted: %+v", al)
	}
	// 5 of the next 100 land in the 1s bucket: 5% > the 1% budget.
	al := tr.Observe(mk(20, []uint64{170, 25, 5, 0}))
	if len(al) != 1 || al[0].State != "firing" {
		t.Fatalf("slow tail did not fire: %+v", al)
	}
	if al[0].BurnRate < 1 {
		t.Fatalf("burn rate %v, want >= 1", al[0].BurnRate)
	}
	st := tr.Status()
	if len(st) != 1 || !st[0].Firing {
		t.Fatalf("status %+v", st)
	}
	if st[0].WindowBad != 5 {
		t.Fatalf("window bad %v, want 5 (the 1s-bucket requests)", st[0].WindowBad)
	}
}

func TestSLOEmptyWindowDoesNotFlap(t *testing.T) {
	tr := NewSLOTracker([]SLO{{Name: "avail", TargetAvailability: 0.9, WindowS: 10}})
	tr.Observe(obsAt(1, 10, 5)) // fires
	// Traffic stops entirely; windows slide empty. The alert must not
	// resolve (no evidence) and must not re-fire.
	for at := 20.0; at < 100; at += 10 {
		if al := tr.Observe(obsAt(at, 10, 5)); len(al) != 0 {
			t.Fatalf("empty window at %v emitted %+v", at, al)
		}
	}
	if st := tr.Status(); !st[0].Firing {
		t.Fatalf("firing state lost over empty windows")
	}
}

func TestSLOOutOfOrderDropped(t *testing.T) {
	tr := NewSLOTracker([]SLO{{Name: "avail", TargetAvailability: 0.9, WindowS: 100}})
	tr.Observe(obsAt(10, 100, 0))
	if al := tr.Observe(obsAt(5, 0, 0)); len(al) != 0 {
		t.Fatalf("out-of-order sample emitted %+v", al)
	}
	if st := tr.Status(); st[0].WindowTotal != 100 {
		t.Fatalf("out-of-order sample perturbed the window: %+v", st[0])
	}
}

func TestSLODeterministicReplay(t *testing.T) {
	run := func() []SLOAlert {
		tr := NewSLOTracker(DefaultSLOs())
		for i := 0; i < 50; i++ {
			at := float64(i) * 10
			errs := 0.0
			if i > 20 && i < 30 {
				errs = float64(i-20) * 5
			}
			tr.Observe(SLOObs{AtS: at, Total: float64(i) * 100, Errors: errs})
		}
		return tr.Alerts()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("scenario produced no alerts")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d alerts", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRequestObs(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_requests_total", L("code", "200"), L("endpoint", "/v1/predict")).Add(90)
	r.Counter("serve_requests_total", L("code", "429"), L("endpoint", "/v1/predict")).Add(4)
	r.Counter("serve_requests_total", L("code", "500"), L("endpoint", "/v1/predict")).Add(6)
	r.Counter("other_total").Add(99)
	h := r.Histogram("serve_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h2 := r.Histogram("serve_latency_seconds", []float64{0.1, 1}, L("endpoint", "/v1/plan"))
	h2.Observe(2)

	o := RequestObs(42, r.Snapshot(), "serve_requests_total", "serve_latency_seconds")
	if o.AtS != 42 {
		t.Errorf("AtS %v", o.AtS)
	}
	if o.Total != 100 {
		t.Errorf("total %v, want 100", o.Total)
	}
	if o.Errors != 6 {
		t.Errorf("errors %v, want 6 (only 5xx count)", o.Errors)
	}
	if o.LatCount != 3 {
		t.Errorf("latency count %v, want 3 (merged across label sets)", o.LatCount)
	}
	want := []uint64{1, 1, 1}
	for i, c := range o.LatCounts {
		if c != want[i] {
			t.Errorf("lat counts %v, want %v", o.LatCounts, want)
			break
		}
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *SLOTracker
	if al := tr.Observe(obsAt(1, 1, 0)); al != nil {
		t.Fatalf("nil tracker observed: %+v", al)
	}
	if tr.Status() != nil || tr.Alerts() != nil {
		t.Fatalf("nil tracker returned state")
	}
}
