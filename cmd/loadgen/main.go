// Command loadgen benchmarks the planning service: it hammers
// POST /v1/predict from concurrent workers for a fixed duration, then
// reports throughput, latency quantiles, and the server's cache hit
// rate as JSON (the BENCH_serve.json artifact).
//
// With no -url it spins up an in-process server on a loopback listener,
// so the benchmark is self-contained:
//
//	loadgen -duration 5s -workers 16 -out BENCH_serve.json
//
// Point -url at a running serve instance to benchmark over the wire.
// The first request is a synchronous warmup that pays the calibration
// cache miss; the measured window is cache-warm, which is the serving
// layer's whole bet.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

type benchReport struct {
	Endpoint   string         `json:"endpoint"`
	Workers    int            `json:"workers"`
	DurationS  float64        `json:"duration_s"`
	Requests   int            `json:"requests"`
	Throughput float64        `json:"rps"`
	P50MS      float64        `json:"p50_ms"`
	P95MS      float64        `json:"p95_ms"`
	P99MS      float64        `json:"p99_ms"`
	MeanMS     float64        `json:"mean_ms"`
	Status     map[string]int `json:"status"`

	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	CacheCoalesced int     `json:"cache_coalesced"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Shed           int     `json:"shed"`
	Errors         int     `json:"errors"`
}

type workerStats struct {
	lats   []float64 // seconds
	status map[int]int
	errors int
}

func main() {
	baseURL := flag.String("url", "", "serve base URL (empty: run an in-process server)")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	workers := flag.Int("workers", 16, "concurrent request loops")
	geometry := flag.String("geometry", "cylinder", "workload geometry")
	scale := flag.Float64("scale", 6, "workload scale")
	system := flag.String("system", "CSP-2", "instance type to predict on")
	ranks := flag.Int("ranks", 32, "rank count to predict at")
	out := flag.String("out", "BENCH_serve.json", "report path (- for stdout only)")
	flag.Parse()

	target := *baseURL
	if target == "" {
		srv, err := serve.New(serve.Config{MaxInflight: 4 * *workers})
		fatal(err)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		target = ts.URL
	}

	body, err := json.Marshal(map[string]any{
		"workload": map[string]any{"geometry": *geometry, "scale": *scale},
		"systems":  []string{*system},
		"ranks":    []int{*ranks},
	})
	fatal(err)
	predictURL := target + "/v1/predict"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *workers}}

	// Warmup: pay the calibration miss outside the measured window.
	warm, err := client.Post(predictURL, "application/json", bytes.NewReader(body))
	fatal(err)
	fatal(drainBody(warm))
	if warm.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("warmup returned %s", warm.Status))
	}

	stats := make([]workerStats, *workers)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(st *workerStats) {
			defer wg.Done()
			st.status = make(map[int]int)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(predictURL, "application/json", bytes.NewReader(body))
				if err != nil {
					st.errors++
					continue
				}
				if err := drainBody(resp); err != nil {
					st.errors++
					continue
				}
				st.lats = append(st.lats, time.Since(t0).Seconds())
				st.status[resp.StatusCode]++
			}
		}(&stats[i])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lats []float64
	statuses := make(map[string]int)
	errors := 0
	for i := range stats {
		lats = append(lats, stats[i].lats...)
		for code, n := range stats[i].status {
			statuses[strconv.Itoa(code)] += n
		}
		errors += stats[i].errors
	}
	sort.Float64s(lats)
	mean := 0.0
	for _, l := range lats {
		mean += l
	}
	if len(lats) > 0 {
		mean /= float64(len(lats))
	}

	report := benchReport{
		Endpoint:   "/v1/predict",
		Workers:    *workers,
		DurationS:  elapsed,
		Requests:   len(lats),
		Throughput: float64(len(lats)) / elapsed,
		P50MS:      quantile(lats, 0.50) * 1e3,
		P95MS:      quantile(lats, 0.95) * 1e3,
		P99MS:      quantile(lats, 0.99) * 1e3,
		MeanMS:     mean * 1e3,
		Status:     statuses,
		Errors:     errors,
	}
	fatal(scrapeCache(client, target, &report))

	enc, err := json.MarshalIndent(report, "", "  ")
	fatal(err)
	fmt.Println(string(enc))
	if *out != "-" {
		fatal(os.WriteFile(*out, append(enc, '\n'), 0o644))
	}
}

// quantile reads the q-quantile from sorted latencies.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// drainBody consumes and closes a response body so the connection is
// reused by the keepalive pool.
func drainBody(resp *http.Response) error {
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if cerr := resp.Body.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return resp.Body.Close()
}

// scrapeCache pulls the server's own cache and shed counters from
// GET /v1/metrics?format=json into the report.
func scrapeCache(client *http.Client, target string, r *benchReport) error {
	resp, err := client.Get(target + "/v1/metrics?format=json")
	if err != nil {
		return err
	}
	var ms []obs.Metric
	derr := json.NewDecoder(resp.Body).Decode(&ms)
	if cerr := resp.Body.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil {
		return derr
	}
	for _, m := range ms {
		switch m.Name {
		case "serve_cache_total":
			switch m.Label("result") {
			case "hit":
				r.CacheHits = int(m.Value)
			case "miss":
				r.CacheMisses = int(m.Value)
			case "coalesced":
				r.CacheCoalesced = int(m.Value)
			}
		case "serve_shed_total":
			r.Shed += int(m.Value)
		}
	}
	if total := r.CacheHits + r.CacheMisses + r.CacheCoalesced; total > 0 {
		r.CacheHitRate = float64(r.CacheHits) / float64(total)
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
