// Command loadgen benchmarks the planning service: it drives
// POST /v1/predict for a fixed duration, then reports throughput,
// latency quantiles, and cache hit rates as JSON.
//
// Two load models:
//
//   - Closed loop (default): -workers request loops, each issuing the
//     next request as soon as the previous one returns. Measures peak
//     sustainable throughput.
//   - Open loop (-rate R): arrivals are scheduled at a fixed offered
//     rate R/s regardless of how fast the server answers, and latency
//     is measured from the *scheduled* arrival time, so queueing delay
//     counts — the closed-loop model silently hides it (coordinated
//     omission).
//
// Two topologies:
//
//   - Single server (default): one serve.Server (in-process unless
//     -url points at a running instance); writes BENCH_serve.json.
//   - Cluster (-cluster N): N in-process replicas behind the
//     internal/cluster router, sharded by calibration key, benchmarked
//     against an in-run single-replica baseline on the same workload;
//     writes BENCH_cluster.json with aggregate and per-replica numbers.
//
// The cluster benchmark's workload is -keys distinct calibration seeds
// with per-replica cache capacity -cache chosen so the keyset overflows
// one replica's LRU but fits the fleet's: the single baseline thrashes
// (every request pays a calibration) while the sharded fleet stays warm.
// That is the cluster's whole bet — N disjoint warm caches instead of N
// copies of the same one — so the speedup holds even on a single CPU.
//
//	loadgen -duration 5s -workers 16 -out BENCH_serve.json
//	loadgen -cluster 4 -duration 5s -out BENCH_cluster.json
//	loadgen -rate 2000 -duration 5s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

type benchReport struct {
	Endpoint   string         `json:"endpoint"`
	Workers    int            `json:"workers"`
	OfferedRPS float64        `json:"offered_rps,omitempty"`
	Keys       int            `json:"keys,omitempty"`
	DurationS  float64        `json:"duration_s"`
	Requests   int            `json:"requests"`
	Throughput float64        `json:"rps"`
	P50MS      float64        `json:"p50_ms"`
	P95MS      float64        `json:"p95_ms"`
	P99MS      float64        `json:"p99_ms"`
	MeanMS     float64        `json:"mean_ms"`
	Status     map[string]int `json:"status"`

	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	CacheCoalesced int     `json:"cache_coalesced"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Shed           int     `json:"shed"`
	Errors         int     `json:"errors"`

	SlowestTraces []exemplar `json:"slowest_traces,omitempty"`
}

// exemplar ties a tail-latency observation back to its distributed
// trace: the X-Trace-Id of one of the window's slowest requests, so a
// bad quantile in a report links directly to the span tree that
// produced it (cmd/trace -merge -format=tree, grep the trace ID).
type exemplar struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
	Status    int     `json:"status"`
	Replica   string  `json:"replica,omitempty"`
}

// windowStats is one measured window (cluster arm or baseline arm of
// the cluster benchmark).
type windowStats struct {
	DurationS    float64        `json:"duration_s"`
	Requests     int            `json:"requests"`
	Throughput   float64        `json:"rps"`
	P50MS        float64        `json:"p50_ms"`
	P95MS        float64        `json:"p95_ms"`
	P99MS        float64        `json:"p99_ms"`
	MeanMS       float64        `json:"mean_ms"`
	Status       map[string]int `json:"status"`
	Errors       int            `json:"errors"`
	CacheHitRate float64        `json:"cache_hit_rate"`

	SlowestTraces []exemplar `json:"slowest_traces,omitempty"`
}

type replicaStats struct {
	Name           string  `json:"name"`
	Requests       int     `json:"requests"`
	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	CacheCoalesced int     `json:"cache_coalesced"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

type clusterReport struct {
	Mode            string         `json:"mode"`
	Endpoint        string         `json:"endpoint"`
	Replicas        int            `json:"replicas"`
	CachePerReplica int            `json:"cache_entries_per_replica"`
	Keys            int            `json:"keys"`
	Workers         int            `json:"workers"`
	OfferedRPS      float64        `json:"offered_rps,omitempty"`
	Cluster         windowStats    `json:"cluster"`
	PerReplica      []replicaStats `json:"per_replica"`
	RouterRetries   int            `json:"router_retries"`
	RouterDenied    int            `json:"router_admission_denied"`
	Baseline        windowStats    `json:"single_replica_baseline"`
	Speedup         float64        `json:"speedup_vs_single"`
}

type workerStats struct {
	lats     []float64 // seconds
	status   map[int]int
	replicas map[string]int // X-Replica counts (cluster mode)
	errors   int
	slow     []exemplar // this worker's slowest requests, descending
}

// runSpec parameterizes one measured window over one target.
type runSpec struct {
	client    *http.Client
	url       string   // predict endpoint
	bodies    [][]byte // request bodies, cycled per request
	workers   int
	duration  time.Duration
	rate      float64 // offered arrivals/s; 0 = closed loop
	exemplars int     // slowest-trace exemplars to keep (0 disables)
}

type runResult struct {
	lats     []float64
	status   map[string]int
	replicas map[string]int
	errors   int
	elapsed  float64
	slow     []exemplar
}

func main() {
	baseURL := flag.String("url", "", "serve base URL (empty: run an in-process server)")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	workers := flag.Int("workers", 16, "concurrent request loops (closed loop only)")
	rate := flag.Float64("rate", 0, "open-loop offered arrival rate per second (0: closed loop)")
	geometry := flag.String("geometry", "cylinder", "workload geometry")
	scale := flag.Float64("scale", 6, "workload scale")
	system := flag.String("system", "CSP-2", "instance type to predict on")
	ranks := flag.Int("ranks", 32, "rank count to predict at")
	keys := flag.Int("keys", 0, "distinct calibration seeds in the workload (0: 1, or 3NC/4 in cluster mode)")
	clusterN := flag.Int("cluster", 0, "benchmark N sharded replicas behind the router vs a single-replica baseline")
	cacheEntries := flag.Int("cache", 8, "per-replica calibration cache capacity (cluster mode)")
	samples := flag.Int("samples", 1, "replica microbenchmark samples (cluster mode)")
	out := flag.String("out", "", "report path (default BENCH_serve.json / BENCH_cluster.json; - for stdout only)")
	exemplars := flag.Int("exemplars", 5, "trace-ID exemplars of the slowest requests kept per window (0 disables)")
	flag.Parse()

	if *clusterN > 0 {
		k := *keys
		if k <= 0 {
			// Default keyset: overflow one replica's cache (K > C) while
			// leaving every replica's owned share under its capacity even
			// at ~2x ring skew (mean K/N = C/2, so max owned ~C).
			k = *clusterN * *cacheEntries / 2
			if k <= *cacheEntries {
				k = *cacheEntries + 1
			}
		}
		path := *out
		if path == "" {
			path = "BENCH_cluster.json"
		}
		runClusterBench(*clusterN, *cacheEntries, *samples, k,
			bodiesFor(*geometry, *scale, *system, *ranks, k),
			*workers, *duration, *rate, *exemplars, path)
		return
	}

	k := *keys
	if k <= 0 {
		k = 1
	}
	path := *out
	if path == "" {
		path = "BENCH_serve.json"
	}
	runServeBench(*baseURL, bodiesFor(*geometry, *scale, *system, *ranks, k),
		*workers, *duration, *rate, *exemplars, path)
}

// runServeBench is the single-server benchmark (BENCH_serve.json).
func runServeBench(baseURL string, bodies [][]byte, workers int, duration time.Duration, rate float64, exemplars int, out string) {
	target := baseURL
	if target == "" {
		srv, err := serve.New(serve.Config{MaxInflight: 4 * workers})
		fatal(err)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		target = ts.URL
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * workers}}
	spec := runSpec{
		client:    client,
		url:       target + "/v1/predict",
		bodies:    bodies,
		workers:   workers,
		duration:  duration,
		rate:      rate,
		exemplars: exemplars,
	}

	// Warmup: pay the calibration misses outside the measured window.
	fatal(warmKeys(spec))
	res := runWindow(spec)

	w := summarize(res)
	report := benchReport{
		Endpoint:      "/v1/predict",
		Workers:       workers,
		OfferedRPS:    rate,
		DurationS:     w.DurationS,
		Requests:      w.Requests,
		Throughput:    w.Throughput,
		P50MS:         w.P50MS,
		P95MS:         w.P95MS,
		P99MS:         w.P99MS,
		MeanMS:        w.MeanMS,
		Status:        w.Status,
		Errors:        w.Errors,
		SlowestTraces: w.SlowestTraces,
	}
	if len(bodies) > 1 {
		report.Keys = len(bodies)
	}
	fatal(scrapeCache(client, target, &report))
	writeReport(report, out)
}

// runClusterBench benchmarks N sharded replicas behind the router
// against a single-replica baseline on the same keyset, and writes the
// BENCH_cluster.json artifact.
func runClusterBench(n, cacheEntries, samples, keys int, bodies [][]byte, workers int, duration time.Duration, rate float64, exemplars int, out string) {
	const calibSeed = 1
	newReplica := func() *serve.Server {
		srv, err := serve.New(serve.Config{
			Samples:      samples,
			DefaultSeed:  calibSeed,
			CacheEntries: cacheEntries,
			MaxInflight:  4 * workers,
		})
		fatal(err)
		return srv
	}

	// Baseline arm: one replica, same cache capacity, same workload.
	// The keyset overflows its LRU, so its "warmup" pass cannot stick —
	// the measured window pays a calibration per request by design.
	fmt.Fprintf(os.Stderr, "loadgen: baseline arm (1 replica, cache %d, %d keys)\n", cacheEntries, keys)
	base := newReplica()
	bts := httptest.NewServer(base.Handler())
	defer bts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * workers}}
	baseSpec := runSpec{
		client:    client,
		url:       bts.URL + "/v1/predict",
		bodies:    bodies,
		workers:   workers,
		duration:  duration,
		rate:      rate,
		exemplars: exemplars,
	}
	fatal(warmKeys(baseSpec))
	baseWin := summarize(runWindow(baseSpec))
	bh, bm, bc, _, err := scrapeCounters(client, bts.URL)
	fatal(err)
	baseWin.CacheHitRate = hitRate(bh, bm, bc)

	// Cluster arm: N replicas behind the router, each with a private
	// registry so per-replica hit rates are separable.
	fmt.Fprintf(os.Stderr, "loadgen: cluster arm (%d replicas, cache %d each, %d keys)\n", n, cacheEntries, keys)
	transports := make([]*cluster.HandlerTransport, n)
	replicas := make([]cluster.Replica, n)
	for i := range replicas {
		name := fmt.Sprintf("r%d", i)
		transports[i] = cluster.NewHandlerTransport(newReplica().Handler())
		replicas[i] = cluster.Replica{
			Name:      name,
			BaseURL:   "http://" + name,
			Transport: transports[i],
		}
	}
	c, err := cluster.New(cluster.Config{
		Replicas:    replicas,
		Seed:        1,
		DefaultSeed: calibSeed,
		MaxInflight: 4 * workers,
	})
	fatal(err)
	defer c.Close()
	ts := httptest.NewServer(c.Router().Handler())
	defer ts.Close()
	clusterSpec := runSpec{
		client:    client,
		url:       ts.URL + "/v1/predict",
		bodies:    bodies,
		workers:   workers,
		duration:  duration,
		rate:      rate,
		exemplars: exemplars,
	}
	fatal(warmKeys(clusterSpec))
	res := runWindow(clusterSpec)
	clusterWin := summarize(res)

	perReplica := make([]replicaStats, n)
	var hits, misses, coalesced int
	for i, r := range replicas {
		rc := &http.Client{Transport: transports[i]}
		h, m, co, _, err := scrapeCounters(rc, r.BaseURL)
		fatal(err)
		hits, misses, coalesced = hits+h, misses+m, coalesced+co
		perReplica[i] = replicaStats{
			Name:           r.Name,
			Requests:       res.replicas[r.Name],
			CacheHits:      h,
			CacheMisses:    m,
			CacheCoalesced: co,
			CacheHitRate:   hitRate(h, m, co),
		}
	}
	clusterWin.CacheHitRate = hitRate(hits, misses, coalesced)
	retries, denied, err := scrapeRouter(client, ts.URL)
	fatal(err)

	report := clusterReport{
		Mode:            "cluster",
		Endpoint:        "/v1/predict",
		Replicas:        n,
		CachePerReplica: cacheEntries,
		Keys:            keys,
		Workers:         workers,
		OfferedRPS:      rate,
		Cluster:         clusterWin,
		PerReplica:      perReplica,
		RouterRetries:   retries,
		RouterDenied:    denied,
		Baseline:        baseWin,
	}
	if baseWin.Throughput > 0 {
		report.Speedup = clusterWin.Throughput / baseWin.Throughput
	}
	writeReport(report, out)
}

// bodiesFor builds one predict body per calibration key. With a single
// key the seed field is omitted (server default); with several, seeds
// 1..keys address distinct cache entries.
func bodiesFor(geometry string, scale float64, system string, ranks, keys int) [][]byte {
	bodies := make([][]byte, keys)
	for i := range bodies {
		req := map[string]any{
			"workload": map[string]any{"geometry": geometry, "scale": scale},
			"systems":  []string{system},
			"ranks":    []int{ranks},
		}
		if keys > 1 {
			req["seed"] = i + 1
		}
		b, err := json.Marshal(req)
		fatal(err)
		bodies[i] = b
	}
	return bodies
}

// warmKeys posts every body once, sequentially, so the measured window
// starts with whatever warmth the target's cache can actually hold.
func warmKeys(spec runSpec) error {
	for i := range spec.bodies {
		code, _, _, err := post(spec, i)
		if err != nil {
			return fmt.Errorf("warmup key %d: %w", i, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("warmup key %d returned %d", i, code)
		}
	}
	return nil
}

// runWindow dispatches to the configured load model.
func runWindow(spec runSpec) runResult {
	if spec.rate > 0 {
		return runOpenLoop(spec)
	}
	return runClosedLoop(spec)
}

// runClosedLoop: each worker issues its next request as soon as the
// previous returns, cycling the key set from a per-worker offset.
func runClosedLoop(spec runSpec) runResult {
	stats := make([]workerStats, spec.workers)
	start := time.Now()
	deadline := start.Add(spec.duration)
	var wg sync.WaitGroup
	for w := 0; w < spec.workers; w++ {
		wg.Add(1)
		go func(w int, st *workerStats) {
			defer wg.Done()
			st.status = make(map[int]int)
			st.replicas = make(map[string]int)
			for i := w; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				code, replica, traceID, err := post(spec, i)
				if err != nil {
					st.errors++
					continue
				}
				lat := time.Since(t0).Seconds()
				st.lats = append(st.lats, lat)
				st.status[code]++
				if replica != "" {
					st.replicas[replica]++
				}
				st.slow = addExemplar(st.slow,
					exemplar{TraceID: traceID, LatencyMS: lat * 1e3, Status: code, Replica: replica},
					spec.exemplars)
			}
		}(w, &stats[w])
	}
	wg.Wait()
	return merge(stats, time.Since(start), spec.exemplars)
}

// runOpenLoop schedules arrivals at the offered rate on a fixed
// timetable and measures latency from each request's *scheduled* start,
// not its actual send, so time spent queued behind a slow server counts
// against the server (avoiding coordinated omission). One goroutine per
// in-flight arrival; -workers is ignored.
func runOpenLoop(spec runSpec) runResult {
	interval := time.Duration(float64(time.Second) / spec.rate)
	total := int(spec.rate * spec.duration.Seconds())
	if total < 1 {
		total = 1
	}
	agg := workerStats{status: make(map[int]int), replicas: make(map[string]int)}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < total; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			code, replica, traceID, err := post(spec, i)
			lat := time.Since(sched).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				agg.errors++
				return
			}
			agg.lats = append(agg.lats, lat)
			agg.status[code]++
			if replica != "" {
				agg.replicas[replica]++
			}
			agg.slow = addExemplar(agg.slow,
				exemplar{TraceID: traceID, LatencyMS: lat * 1e3, Status: code, Replica: replica},
				spec.exemplars)
		}(i, sched)
	}
	wg.Wait()
	return merge([]workerStats{agg}, time.Since(start), spec.exemplars)
}

// post issues request i (cycling the key set) and reports the status
// code, the routing replica (X-Replica, set by the cluster router),
// and the distributed trace ID (X-Trace-Id, set by whichever tier
// rooted the trace).
func post(spec runSpec, i int) (code int, replica, traceID string, err error) {
	body := spec.bodies[i%len(spec.bodies)]
	resp, err := spec.client.Post(spec.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", "", err
	}
	if err := drainBody(resp); err != nil {
		return 0, "", "", err
	}
	return resp.StatusCode, resp.Header.Get("X-Replica"), resp.Header.Get("X-Trace-Id"), nil
}

// addExemplar keeps list as the n slowest observations, descending by
// latency. n is small (default 5), so the insertion sort is fine.
func addExemplar(list []exemplar, e exemplar, n int) []exemplar {
	if n <= 0 || e.TraceID == "" {
		return list
	}
	if len(list) == n && e.LatencyMS <= list[n-1].LatencyMS {
		return list
	}
	list = append(list, e)
	sort.SliceStable(list, func(i, j int) bool { return list[i].LatencyMS > list[j].LatencyMS })
	if len(list) > n {
		list = list[:n]
	}
	return list
}

// merge folds per-worker stats into one result, keeping the nSlow
// slowest exemplars across all workers.
func merge(stats []workerStats, elapsed time.Duration, nSlow int) runResult {
	res := runResult{
		status:   make(map[string]int),
		replicas: make(map[string]int),
		elapsed:  elapsed.Seconds(),
	}
	for i := range stats {
		res.lats = append(res.lats, stats[i].lats...)
		for code, n := range stats[i].status {
			res.status[strconv.Itoa(code)] += n
		}
		for name, n := range stats[i].replicas {
			res.replicas[name] += n
		}
		res.errors += stats[i].errors
		for _, e := range stats[i].slow {
			res.slow = addExemplar(res.slow, e, nSlow)
		}
	}
	sort.Float64s(res.lats)
	return res
}

// summarize reduces a result to the reported window statistics.
func summarize(res runResult) windowStats {
	mean := 0.0
	for _, l := range res.lats {
		mean += l
	}
	if len(res.lats) > 0 {
		mean /= float64(len(res.lats))
	}
	return windowStats{
		DurationS:     res.elapsed,
		Requests:      len(res.lats),
		Throughput:    float64(len(res.lats)) / res.elapsed,
		P50MS:         quantile(res.lats, 0.50) * 1e3,
		P95MS:         quantile(res.lats, 0.95) * 1e3,
		P99MS:         quantile(res.lats, 0.99) * 1e3,
		MeanMS:        mean * 1e3,
		Status:        res.status,
		Errors:        res.errors,
		SlowestTraces: res.slow,
	}
}

// quantile reads the q-quantile from sorted latencies.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// drainBody consumes and closes a response body so the connection is
// reused by the keepalive pool.
func drainBody(resp *http.Response) error {
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if cerr := resp.Body.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return resp.Body.Close()
}

// scrapeMetrics fetches GET <target>/v1/metrics?format=json.
func scrapeMetrics(client *http.Client, target string) ([]obs.Metric, error) {
	resp, err := client.Get(target + "/v1/metrics?format=json")
	if err != nil {
		return nil, err
	}
	var ms []obs.Metric
	derr := json.NewDecoder(resp.Body).Decode(&ms)
	if cerr := resp.Body.Close(); derr == nil {
		derr = cerr
	}
	return ms, derr
}

// scrapeCounters pulls a serve replica's cache and shed counters.
func scrapeCounters(client *http.Client, target string) (hits, misses, coalesced, shed int, err error) {
	ms, err := scrapeMetrics(client, target)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, m := range ms {
		switch m.Name {
		case "serve_cache_total":
			switch m.Label("result") {
			case "hit":
				hits = int(m.Value)
			case "miss":
				misses = int(m.Value)
			case "coalesced":
				coalesced = int(m.Value)
			}
		case "serve_shed_total":
			shed += int(m.Value)
		}
	}
	return hits, misses, coalesced, shed, nil
}

// scrapeRouter pulls the cluster router's retry and admission counters.
func scrapeRouter(client *http.Client, target string) (retries, denied int, err error) {
	ms, err := scrapeMetrics(client, target)
	if err != nil {
		return 0, 0, err
	}
	for _, m := range ms {
		switch m.Name {
		case "cluster_retry_total":
			retries += int(m.Value)
		case "cluster_admission_denied_total":
			denied += int(m.Value)
		}
	}
	return retries, denied, nil
}

// scrapeCache fills a single-server report's cache fields.
func scrapeCache(client *http.Client, target string, r *benchReport) error {
	hits, misses, coalesced, shed, err := scrapeCounters(client, target)
	if err != nil {
		return err
	}
	r.CacheHits, r.CacheMisses, r.CacheCoalesced, r.Shed = hits, misses, coalesced, shed
	r.CacheHitRate = hitRate(hits, misses, coalesced)
	return nil
}

func hitRate(hits, misses, coalesced int) float64 {
	if total := hits + misses + coalesced; total > 0 {
		return float64(hits) / float64(total)
	}
	return 0
}

// writeReport prints the report and writes it to path unless "-".
func writeReport(report any, path string) {
	enc, err := json.MarshalIndent(report, "", "  ")
	fatal(err)
	fmt.Println(string(enc))
	if path != "-" {
		fatal(os.WriteFile(path, append(enc, '\n'), 0o644))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
