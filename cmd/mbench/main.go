// Command mbench runs the microbenchmarks: STREAM (memory bandwidth over
// a thread sweep, Eq. 8 fit) and PingPong (message time over a size
// sweep, Eq. 12 fit), either against the modeled catalog systems or on
// the host machine itself.
//
// Examples:
//
//	mbench -stream -system CSP-2          # simulated STREAM sweep + fit
//	mbench -pingpong -system "CSP-2 EC"   # simulated PingPong sweep + fit
//	mbench -stream -host -threads 8       # measure this machine
//	mbench -pingpong -host                # goroutine PingPong on this machine
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/machine"
	"repro/internal/mbench"
)

func main() {
	var (
		stream   = flag.Bool("stream", false, "run the STREAM benchmark")
		pingpong = flag.Bool("pingpong", false, "run the PingPong benchmark")
		host     = flag.Bool("host", false, "measure the host instead of a modeled system")
		system   = flag.String("system", "CSP-2", "modeled system to characterize")
		threads  = flag.Int("threads", runtime.GOMAXPROCS(0), "max threads for host STREAM")
		samples  = flag.Int("samples", 5, "samples per point for simulated sweeps")
		seed     = flag.Int64("seed", 1, "noise seed for simulated sweeps")
	)
	flag.Parse()
	if !*stream && !*pingpong {
		*stream, *pingpong = true, true
	}

	if *host {
		if *stream {
			fmt.Println("host STREAM (best of 5 trials, 64M elements):")
			for _, k := range []mbench.StreamKernel{mbench.Copy, mbench.Scale, mbench.Add, mbench.Triad} {
				for n := 1; n <= *threads; n *= 2 {
					bw, err := mbench.StreamHost(k, n, 1<<26, 5)
					fatal(err)
					fmt.Printf("  %-6s %3d threads  %10.0f MB/s\n", k, n, bw)
				}
			}
		}
		if *pingpong {
			fmt.Println("host PingPong (goroutine channels):")
			for _, size := range []int{0, 64, 4096, 65536, 1 << 20} {
				us, err := mbench.PingPongHost(size, 2000)
				fatal(err)
				fmt.Printf("  %10d bytes  %10.3f µs one-way\n", size, us)
			}
		}
		return
	}

	sys, err := machine.ByAbbrev(*system)
	fatal(err)
	rng := rand.New(rand.NewSource(*seed))
	if *stream {
		pts := mbench.StreamSweepSim(sys, false, *samples, rng)
		f, err := mbench.FitStream(pts)
		fatal(err)
		fmt.Printf("STREAM sweep on %s:\n", sys.Abbrev)
		for _, p := range pts {
			fmt.Printf("  %3d threads  %10.0f MB/s\n", p.Threads, p.BandwidthMBps)
		}
		fmt.Printf("two-line fit: a1=%.2f a2=%.2f a3=%.2f (R²=%.4f)\n", f.A1, f.A2, f.A3, f.R2)
	}
	if *pingpong {
		for _, intra := range []bool{false, true} {
			pts := mbench.PingPongSweepSim(sys, intra, mbench.DefaultMessageSizes(), *samples, rng)
			link, line, err := mbench.FitPingPong(pts)
			fatal(err)
			kind := "inter-node"
			if intra {
				kind = "intra-node"
			}
			fmt.Printf("PingPong %s on %s: b=%.2f MB/s l=%.2f µs (R²=%.4f)\n",
				kind, sys.Abbrev, link.BandwidthMBps, link.LatencyUS, line.R2)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		os.Exit(1)
	}
}
