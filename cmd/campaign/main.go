// Command campaign executes a declarative simulation campaign: a JSON
// config of patient cases, a budget and an objective. For each case the
// framework characterizes the catalog (once), tunes the model, picks an
// instance, runs the job with guards, and reports a spend summary.
//
// SIGINT/SIGTERM interrupt the campaign at the next clean point between
// jobs: the partial summary (every completed job's spend and telemetry)
// is still rendered, and the process exits non-zero.
//
// Usage:
//
//	campaign -config campaign.json
//	campaign -example            # print a starter config and exit
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/machine"
)

const exampleConfig = `{
  "seed": 1,
  "budget_usd": 2.0,
  "objective": "min-cost",
  "deadline_seconds": 120,
  "retries": 10,
  "jobs": [
    {"name": "patient-a-aorta", "geometry": "aorta", "scale": 8, "ranks": 64, "steps": 5000},
    {"name": "patient-b-cerebral", "geometry": "cerebral", "scale": 7, "ranks": 64, "steps": 5000},
    {"name": "batch-cylinder-spot", "geometry": "cylinder", "scale": 10, "ranks": 32,
     "steps": 8000, "system": "CSP-2 Small", "spot": true},
    {"name": "coronary-physical", "geometry": "stenosis", "ranks": 32,
     "physical": {"diameter_mm": 3, "peak_speed_ms": 0.3, "heart_rate_hz": 1.2,
                  "sites_across": 20, "beats": 0.01}}
  ]
}
`

func main() {
	path := flag.String("config", "", "campaign configuration file (JSON)")
	example := flag.Bool("example", false, "print a starter configuration and exit")
	gpu := flag.Bool("gpu", false, "include the GPU instance type in the catalog")
	flag.Parse()

	if *example {
		fmt.Print(exampleConfig)
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "campaign: -config is required (try -example)")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	fatal(err)
	defer f.Close()
	cfg, err := campaign.Load(f)
	fatal(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	systems := machine.Catalog()
	if *gpu {
		systems = machine.FullCatalog()
	}
	fmt.Printf("characterizing %d instance types...\n", len(systems))
	fw, err := core.NewFramework(systems, 5, cfg.Seed)
	fatal(err)

	outcome, err := campaign.Runner{Backend: campaign.BackendSerial}.Run(ctx, fw, cfg)
	interrupted := errors.Is(err, campaign.ErrInterrupted)
	if err != nil && !interrupted {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(outcome.Render())

	// Post-campaign accuracy report from the refinement store.
	for _, sys := range systems {
		if before, after, n := fw.Refiner.MAPE(sys.Abbrev, "direct"); n > 0 {
			fmt.Printf("model accuracy on %s: MAPE %.1f%% raw, %.1f%% calibrated (%d runs)\n",
				sys.Abbrev, before*100, after*100, n)
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "campaign: interrupted; partial results above")
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}
