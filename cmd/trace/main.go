// Command trace filters and re-renders trace files produced by the
// observability layer (cmd/fleet -trace, or any obs JSONL span dump).
// Input format is sniffed: a Chrome trace-event JSON object or JSONL.
//
// Usage:
//
//	trace -format=text trace.json            # self-time summary
//	trace -format=chrome spans.jsonl         # JSONL -> Perfetto-loadable
//	trace -format=jsonl trace.json           # Chrome -> line-oriented
//	trace -format=tree spans.jsonl           # parent/child span tree
//	trace -span=attempt -min-dur=10 t.json   # filter by name and duration
//	trace -merge router.jsonl rep0.jsonl rep1.jsonl  # stitch exports
//
// -merge accepts any number of trace files and concatenates their
// spans before rendering; with -format=tree the cross-process spans
// stitch into one tree per trace ID, linked by the propagated
// traceparent context.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	format := flag.String("format", "text", "output format: chrome, text, jsonl, or tree")
	spanFilter := flag.String("span", "", "keep only spans whose name contains this substring")
	minDurS := flag.Float64("min-dur", 0, "keep only spans with at least this simulated duration in seconds")
	merge := flag.Bool("merge", false, "accept multiple trace files and merge their spans")
	flag.Parse()

	if *merge {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "trace: -merge requires at least one trace file")
			os.Exit(2)
		}
	} else if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "trace: exactly one trace file required (Chrome JSON or JSONL); use -merge for several")
		os.Exit(2)
	}
	var spans []obs.SpanRecord
	for _, path := range flag.Args() {
		part, err := readSpans(path)
		fatal(err)
		spans = append(spans, part...)
	}

	if *spanFilter != "" || *minDurS > 0 {
		kept := spans[:0]
		for _, s := range spans {
			if *spanFilter != "" && !strings.Contains(s.Name, *spanFilter) {
				continue
			}
			if s.SimDurS() < *minDurS {
				continue
			}
			kept = append(kept, s)
		}
		spans = kept
	}

	switch *format {
	case "chrome":
		fatal(obs.WriteChromeTrace(os.Stdout, spans))
	case "jsonl":
		fatal(obs.WriteJSONL(os.Stdout, spans))
	case "text":
		fmt.Print(obs.RenderSummary(spans, nil))
	case "tree":
		fmt.Print(obs.RenderSpanTree(spans))
	default:
		fmt.Fprintf(os.Stderr, "trace: unknown format %q (want chrome, text, jsonl, or tree)\n", *format)
		os.Exit(2)
	}
}

func readSpans(path string) ([]obs.SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadSpans(f)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}
