// Command trace filters and re-renders trace files produced by the
// observability layer (cmd/fleet -trace, or any obs JSONL span dump).
// Input format is sniffed: a Chrome trace-event JSON object or JSONL.
//
// Usage:
//
//	trace -format=text trace.json            # self-time summary
//	trace -format=chrome spans.jsonl         # JSONL -> Perfetto-loadable
//	trace -format=jsonl trace.json           # Chrome -> line-oriented
//	trace -span=attempt -min-dur=10 t.json   # filter by name and duration
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	format := flag.String("format", "text", "output format: chrome, text, or jsonl")
	spanFilter := flag.String("span", "", "keep only spans whose name contains this substring")
	minDurS := flag.Float64("min-dur", 0, "keep only spans with at least this simulated duration in seconds")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "trace: exactly one trace file required (Chrome JSON or JSONL)")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	fatal(err)
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	fatal(err)

	if *spanFilter != "" || *minDurS > 0 {
		kept := spans[:0]
		for _, s := range spans {
			if *spanFilter != "" && !strings.Contains(s.Name, *spanFilter) {
				continue
			}
			if s.SimDurS() < *minDurS {
				continue
			}
			kept = append(kept, s)
		}
		spans = kept
	}

	switch *format {
	case "chrome":
		fatal(obs.WriteChromeTrace(os.Stdout, spans))
	case "jsonl":
		fatal(obs.WriteJSONL(os.Stdout, spans))
	case "text":
		fmt.Print(obs.RenderSummary(spans, nil))
	default:
		fmt.Fprintf(os.Stderr, "trace: unknown format %q (want chrome, text, or jsonl)\n", *format)
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}
