// Command serve runs the planning service: the paper's decision
// procedure — characterize instance types, tune the model per anatomy,
// predict and recommend — exposed as a versioned HTTP JSON API.
//
// Endpoints (see internal/serve):
//
//	POST /v1/predict        single + batch model predictions
//	POST /v1/plan           cost-bounded instance recommendation
//	POST /v1/campaigns      async campaign submission
//	GET  /v1/campaigns/{id} campaign status
//	GET  /v1/healthz        liveness
//	GET  /v1/metrics        metrics (Prometheus text, ?format=json)
//
// SIGINT/SIGTERM start a graceful shutdown: the listener stops, in-flight
// requests finish, async campaigns drain (interrupted at their next clean
// point past -drain), and the process exits non-zero.
//
// -debug-addr exposes net/http/pprof on a separate listener (never on
// the API mux); -trace exports the request span log as JSONL at
// shutdown, with -trace-seed giving each replica distinct span IDs so
// multi-process exports merge cleanly (cmd/trace -merge).
//
// Usage:
//
//	serve -addr :8080
//	curl -s localhost:8080/v1/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gpu := flag.Bool("gpu", false, "include the GPU instance type in the catalog")
	samples := flag.Int("samples", 5, "microbenchmark samples per characterization point")
	seed := flag.Int64("seed", 1, "default calibration seed for requests that omit one")
	cacheEntries := flag.Int("cache", 64, "calibration cache capacity (entries)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent planning requests before shedding 429s")
	maxCampaigns := flag.Int("max-campaigns", 4, "concurrent async campaigns before shedding 429s")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline ceiling")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before campaigns are interrupted")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (off when empty; never on -addr)")
	traceFile := flag.String("trace", "", "write the request span log as JSONL here at shutdown")
	traceSeed := flag.Int64("trace-seed", 0, "span-ID seed (default -seed; give each replica its own for merged traces)")
	flag.Parse()

	systems := machine.Catalog()
	if *gpu {
		systems = machine.FullCatalog()
	}
	if *traceSeed == 0 {
		*traceSeed = *seed
	}
	tracer := obs.NewTracer(*traceSeed)
	srv, err := serve.New(serve.Config{
		Systems:        systems,
		Samples:        *samples,
		DefaultSeed:    *seed,
		CacheEntries:   *cacheEntries,
		MaxInflight:    *maxInflight,
		MaxCampaigns:   *maxCampaigns,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Tracer:         tracer,
	})
	fatal(err)
	startDebugServer(*debugAddr)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("serve: listening on %s (%d instance types, cache %d, inflight %d)\n",
		*addr, len(systems), *cacheEntries, *maxInflight)

	select {
	case err := <-errc:
		// Listener died on its own (port in use, ...): nothing to drain.
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "serve: signal received; draining")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "serve: http shutdown:", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
	}
	writeTrace(*traceFile, tracer)
	// Clean shutdown on a signal still exits non-zero: the service was
	// asked to die, it did not finish its job.
	fmt.Fprintln(os.Stderr, "serve: shutdown complete")
	os.Exit(1)
}

// startDebugServer exposes the pprof mux on its own listener; the main
// API mux never carries the debug endpoints.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	hs := &http.Server{Addr: addr, Handler: serve.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
	//lint:ignore gorleak the debug listener deliberately lives until process exit; profiling must stay reachable through shutdown
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve: debug listener:", err)
		}
	}()
	fmt.Printf("serve: pprof on %s (debug only; not on the API mux)\n", addr)
}

// writeTrace exports the tracer's span log as JSONL for cmd/trace.
func writeTrace(path string, tracer *obs.Tracer) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve: trace export:", err)
		return
	}
	err = obs.WriteJSONL(f, tracer.Spans())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve: trace export:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "serve: trace written to %s\n", path)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
