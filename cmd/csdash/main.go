// Command csdash builds the CSP Option Dashboard: it characterizes every
// catalog system, tunes the performance model to the chosen anatomy, and
// prints per-instance assessments, the Eq. 17 relative-value heatmap, and
// a recommendation under the chosen objective.
//
// Examples:
//
//	csdash -geometry aorta -ranks 128 -steps 10000
//	csdash -geometry cerebral -ranks 64 -objective min-cost -deadline 120
//	csdash -geometry aorta -ranks 128 -tier tier0
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func main() {
	var (
		geom      = flag.String("geometry", "aorta", "cylinder, aorta or cerebral")
		scale     = flag.Float64("scale", 8, "geometry scale")
		ranks     = flag.Int("ranks", 128, "core count to assess")
		steps     = flag.Int("steps", 10000, "job length in timesteps")
		objective = flag.String("objective", "max-value", "max-throughput, min-cost, min-time or max-value")
		deadline  = flag.Float64("deadline", 0, "time-to-solution limit in seconds (0 = none)")
		seed      = flag.Int64("seed", 1, "characterization noise seed")
		gpu       = flag.Bool("gpu", false, "include the GPU instance type")
		diameter  = flag.Float64("diameter-mm", 0, "physical vessel diameter; with -speed-ms, prints the units conversion")
		speed     = flag.Float64("speed-ms", 0, "physical peak flow speed, m/s")
		heartRate = flag.Float64("heart-rate", 0, "cardiac frequency in Hz (0 = steady)")
		tier      = flag.String("tier", "", "accuracy tier: auto, tier0, tier1 or tier2 (empty = tier1)")
	)
	flag.Parse()

	switch *tier {
	case "":
		*tier = perfmodel.Tier1Calibrated // the pre-tier default
	case perfmodel.TierAuto, perfmodel.Tier0Physics, perfmodel.Tier1Calibrated, perfmodel.Tier2Measured:
	default:
		fmt.Fprintf(os.Stderr, "csdash: unknown tier %q (valid: %v)\n", *tier, perfmodel.ValidTiers())
		os.Exit(2)
	}

	if *diameter > 0 && *speed > 0 {
		conv, err := units.Convert(units.Physical{
			DiameterM:    *diameter * 1e-3,
			PeakSpeedMps: *speed,
			HeartRateHz:  *heartRate,
		}, units.Lattice{SitesAcross: int(2 * *scale), Tau: 0.9})
		fatal(err)
		fmt.Printf("physical problem: %s\n", conv)
		for _, w := range conv.Check() {
			fmt.Println("  warning:", w)
		}
		fmt.Println()
	}

	var obj dashboard.Objective
	switch *objective {
	case "max-throughput":
		obj = dashboard.MaxThroughput
	case "min-cost":
		obj = dashboard.MinCost
	case "min-time":
		obj = dashboard.MinTime
	case "max-value":
		obj = dashboard.MaxValue
	default:
		fmt.Fprintf(os.Stderr, "csdash: unknown objective %q\n", *objective)
		os.Exit(2)
	}

	var dom *geometry.Domain
	var err error
	switch *geom {
	case "cylinder":
		dom, err = geometry.Cylinder(int(8**scale), *scale)
	case "aorta":
		dom, err = geometry.Aorta(*scale)
	case "cerebral":
		dom, err = geometry.Cerebral(*scale/2, 4)
	default:
		err = fmt.Errorf("unknown geometry %q", *geom)
	}
	fatal(err)

	systems := machine.Catalog()
	if *gpu {
		systems = machine.FullCatalog()
	}
	fmt.Println("phase 1: characterizing catalog systems (STREAM + PingPong + fits)...")
	fw, err := core.NewFramework(systems, 5, *seed)
	fatal(err)
	fmt.Printf("phase 2: tuning the model to %s (%d sites)...\n", dom.Name, dom.Stats().Fluid)
	anatomy, err := fw.PrepareAnatomy(dom.Name, dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	fatal(err)

	// Tier 2 and auto need the measured-lookup tables; tier1/tier0 (and
	// the legacy default) run without them.
	if *tier == perfmodel.Tier2Measured || *tier == perfmodel.TierAuto {
		tbl, err := perfmodel.DefaultTable()
		fatal(err)
		fatal(fw.AttachTable(tbl))
	}

	as, err := fw.AssessTier(anatomy, *ranks, *steps, *tier)
	fatal(err)
	fmt.Printf("\nCSP Option Dashboard — %s, %d cores, %d steps\n\n", dom.Name, *ranks, *steps)
	fmt.Println(dashboard.RenderAssessments(as))
	fmt.Printf("relative value r_B,A (Eq. 17; B from left, A from top):\n%s\n",
		dashboard.RenderHeatmap(as, dashboard.RelativeValue(as)))

	front := dashboard.Pareto(as)
	fmt.Println("time/cost Pareto frontier (fastest first):")
	for _, a := range front {
		fmt.Printf("  %-14s %10.2f s  $%.4f\n", a.System, a.Seconds, a.USD)
	}
	fmt.Println()

	best, err := dashboard.Recommend(as, obj, *deadline)
	fatal(err)
	fmt.Printf("recommendation (%s", obj)
	if *deadline > 0 {
		fmt.Printf(", deadline %.0fs", *deadline)
	}
	fmt.Printf("): %s — %.2f MFLUPS, %.1f s, $%.4f", best.System, best.MFLUPS, best.Seconds, best.USD)
	if best.Tier != "" {
		fmt.Printf("  [%s", best.Tier)
		if best.Confidence.HiMFLUPS > best.Confidence.LoMFLUPS {
			fmt.Printf(", %.1f–%.1f MFLUPS", best.Confidence.LoMFLUPS, best.Confidence.HiMFLUPS)
		}
		if best.Extrapolated {
			fmt.Print(", extrapolated")
		}
		fmt.Print("]")
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "csdash:", err)
		os.Exit(1)
	}
}
