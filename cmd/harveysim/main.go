// Command harveysim runs the HARVEY-like sparse LBM engine on one of the
// Figure 2 geometries, either directly on the host (optionally in
// parallel across goroutine ranks with real halo exchange) or as a
// simulated job on a modeled cloud system.
//
// Examples:
//
//	harveysim -geometry aorta -steps 200                 # serial host run
//	harveysim -geometry cylinder -ranks 8 -steps 200     # parallel host run
//	harveysim -geometry cerebral -system CSP-2 -ranks 72 # simulated system
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/simcloud"
)

func buildGeometry(name string, scale float64) (*geometry.Domain, error) {
	switch name {
	case "cylinder":
		return geometry.Cylinder(int(8*scale), scale)
	case "aorta":
		return geometry.Aorta(scale)
	case "cerebral":
		return geometry.Cerebral(scale/2, 4)
	case "stenosis":
		return geometry.StenosedCylinder(int(8*scale), scale, 0.5, scale*0.75)
	case "bifurcation":
		return geometry.Bifurcation(scale)
	default:
		return nil, fmt.Errorf("unknown geometry %q (cylinder, aorta, cerebral, stenosis, bifurcation)", name)
	}
}

func main() {
	var (
		geom    = flag.String("geometry", "cylinder", "cylinder, aorta, cerebral or stenosis")
		scale   = flag.Float64("scale", 8, "geometry scale (vessel radius in lattice sites)")
		steps   = flag.Int("steps", 100, "timesteps to run")
		ranks   = flag.Int("ranks", 1, "parallel tasks")
		system  = flag.String("system", "", "simulate on a modeled system (e.g. CSP-2) instead of running on the host")
		tau     = flag.Float64("tau", 0.9, "BGK relaxation time")
		umax    = flag.Float64("umax", 0.02, "peak inlet velocity (lattice units)")
		seed    = flag.Int64("seed", 1, "noise seed for simulated runs")
		period  = flag.Float64("pulse-period", 0, "pulsatile inflow period in timesteps (0 = steady)")
		amp     = flag.Float64("pulse-amplitude", 0.5, "pulsatile modulation amplitude")
		vtkPath = flag.String("vtk", "", "write the final fields as legacy VTK to this path")
		wssPath = flag.String("wss", "", "write per-site wall forces (shear CSV) to this path")
		ckpt    = flag.String("checkpoint", "", "write a binary checkpoint of the final state to this path")
		resume  = flag.String("resume", "", "restore state from a checkpoint before running")
		coll    = flag.String("collision", "bgk", "collision operator: bgk or trt")
		geoIn   = flag.String("geometry-file", "", "load the domain from a file written by -save-geometry instead of generating it")
		geoOut  = flag.String("save-geometry", "", "write the generated domain to this path and exit")
	)
	flag.Parse()

	var dom *geometry.Domain
	var err error
	if *geoIn != "" {
		f, err2 := os.Open(*geoIn)
		fatal(err2)
		dom, err = geometry.Read(f)
		fatal(f.Close())
	} else {
		dom, err = buildGeometry(*geom, *scale)
	}
	fatal(err)
	if *geoOut != "" {
		f, err := os.Create(*geoOut)
		fatal(err)
		fatal(dom.Write(f))
		fatal(f.Close())
		fmt.Printf("wrote %s (%d sites)\n", *geoOut, dom.Sites())
		return
	}
	params := lbm.Params{Tau: *tau, UMax: *umax}
	switch *coll {
	case "bgk":
		params.Collision = lbm.BGK
	case "trt":
		params.Collision = lbm.TRT
	default:
		fatal(fmt.Errorf("unknown collision operator %q", *coll))
	}
	if *period > 0 {
		params.Pulsatile = lbm.Waveform{Period: *period, Amplitude: *amp}
	}
	s, err := lbm.NewSparse(dom, params)
	fatal(err)
	if *resume != "" {
		f, err := os.Open(*resume)
		fatal(err)
		fatal(s.Restore(f))
		fatal(f.Close())
		fmt.Printf("resumed from %s at step %d\n", *resume, s.Steps())
	}
	stats := dom.Stats()
	fmt.Printf("geometry %s: %d fluid points (bulk %d, wall %d, inlet %d, outlet %d)\n",
		dom.Name, stats.Fluid, stats.Bulk, stats.Wall, stats.Inlet, stats.Outlet)

	if *system != "" {
		sys, err := machine.ByAbbrev(*system)
		fatal(err)
		p, err := decomp.RCB(s, *ranks, lbm.HarveyAccess())
		fatal(err)
		w := simcloud.FromPartition(dom.Name, s.N(), p)
		res, err := simcloud.Run(w, sys, *steps, rand.New(rand.NewSource(*seed)))
		fatal(err)
		fmt.Printf("simulated on %s: %d ranks, %d nodes, %.4g s, %.2f MFLUPS, $%.4f\n",
			res.System, res.Ranks, res.NodesUsed, res.Seconds, res.MFLUPS, res.CostUSD)
		mt := res.MaxTiming()
		fmt.Printf("slowest task: mem %.3g s, intra %.3g s, inter %.3g s per step\n",
			mt.MemS, mt.IntraS, mt.InterS)
		return
	}

	start := time.Now()
	if *ranks <= 1 {
		s.Run(*steps)
	} else {
		p, err := decomp.RCB(s, *ranks, lbm.HarveyAccess())
		fatal(err)
		runner, err := par.NewRunner(s, p)
		fatal(err)
		runner.Run(*steps)
		runner.WriteBack(s)
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("host run: %d steps on %d rank(s) in %.3f s = %.2f MFLUPS (max speed %.4g)\n",
		*steps, *ranks, elapsed, lbm.MFLUPS(s.N(), *steps, elapsed), s.MaxSpeed())

	if *vtkPath != "" {
		f, err := os.Create(*vtkPath)
		fatal(err)
		fatal(s.WriteVTK(f, dom.Name+" flow field"))
		fatal(f.Close())
		fmt.Println("wrote", *vtkPath)
	}
	if *wssPath != "" {
		f, err := os.Create(*wssPath)
		fatal(err)
		fatal(s.WriteWSSCSV(f))
		fatal(f.Close())
		fmt.Println("wrote", *wssPath)
	}
	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		fatal(err)
		fatal(s.Checkpoint(f))
		fatal(f.Close())
		fmt.Println("wrote", *ckpt)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "harveysim:", err)
		os.Exit(1)
	}
}
