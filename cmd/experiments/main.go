// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments              # run everything, in the paper's order
//	experiments fig7 fig9    # run selected artifacts
//	experiments -plot fig3   # additionally render ASCII charts
//	experiments -list        # list artifact IDs
//
// Artifact IDs: table1 fig3 fig4 fig5 table2 fig6 table3 table4 fig7 fig8
// fig9 fig10 fig11, plus the extension studies ext-gpu, ext-shared,
// ext-terms, ext-convergence, ext-weak and ext-pulsatile (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/plot"
)

// renderPlots draws every series group of a report as an ASCII chart.
// Series labeled "<group>/<kind>" are charted together per group.
func renderPlots(r experiments.Report) string {
	groups := map[string][]plot.Series{}
	for label, pts := range r.Series {
		group := label
		if i := strings.IndexByte(label, '/'); i > 0 {
			group = label[:i]
		}
		s := plot.Series{Label: label}
		for _, p := range pts {
			s.Points = append(s.Points, plot.Point{X: p.X, Y: p.Y})
		}
		groups[group] = append(groups[group], s)
	}
	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, g := range names {
		series := groups[g]
		sort.Slice(series, func(i, j int) bool { return series[i].Label < series[j].Label })
		// Rank sweeps and size sweeps read best on a log x axis.
		b.WriteString(plot.Render(series, plot.Options{
			Title: fmt.Sprintf("%s — %s", r.ID, g),
			LogX:  true, Width: 72, Height: 18,
		}))
		b.WriteByte('\n')
	}
	return b.String()
}

var registry = []struct {
	id  string
	run func() (experiments.Report, error)
}{
	{"table1", func() (experiments.Report, error) { return experiments.Table1(), nil }},
	{"fig3", experiments.Fig3},
	{"fig4", experiments.Fig4},
	{"fig5", experiments.Fig5},
	{"table2", experiments.Table2},
	{"fig6", experiments.Fig6},
	{"table3", experiments.Table3},
	{"table4", experiments.Table4},
	{"fig7", experiments.Fig7},
	{"fig8", experiments.Fig8},
	{"fig9", experiments.Fig9},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"ext-gpu", experiments.ExtGPU},
	{"ext-shared", experiments.ExtSharedNode},
	{"ext-terms", experiments.ExtTermSelection},
	{"ext-convergence", experiments.ExtConvergence},
	{"ext-weak", experiments.ExtWeakScaling},
	{"ext-pulsatile", experiments.ExtPulsatile},
}

func main() {
	list := flag.Bool("list", false, "list artifact IDs and exit")
	doPlot := flag.Bool("plot", false, "render ASCII charts of each report's series")
	flag.Parse()
	if *list {
		for _, e := range registry {
			fmt.Println(e.id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range registry {
			ids = append(ids, e.id)
		}
	}
	for _, id := range ids {
		found := false
		for _, e := range registry {
			if e.id != id {
				continue
			}
			found = true
			r, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("==== %s — %s ====\n%s\n", r.ID, r.Title, r.Text)
			if *doPlot {
				fmt.Println(renderPlots(r))
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q (use -list)\n", id)
			os.Exit(2)
		}
	}
}
