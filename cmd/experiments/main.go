// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments              # run everything, in the paper's order
//	experiments fig7 fig9    # run selected artifacts
//	experiments -plot fig3   # additionally render ASCII charts
//	experiments -list        # list artifact IDs
//	experiments -gen-tables  # regenerate the Tier 2 lookup CSV
//	experiments -tiers       # per-tier MAPE report + BENCH_tiers.json
//
// Artifact IDs: table1 fig3 fig4 fig5 table2 fig6 table3 table4 fig7 fig8
// fig9 fig10 fig11, plus the extension studies ext-gpu, ext-shared,
// ext-terms, ext-convergence, ext-weak and ext-pulsatile (see DESIGN.md).
//
// With -tiers, -tiers-baseline FILE compares Tier 1 MAPE against a
// committed BENCH_tiers.json and exits nonzero on a regression of more
// than tier1MAPETolerancePts percentage points — the CI accuracy gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/plot"
)

// tier1MAPETolerancePts is how many percentage points Tier 1 MAPE may
// drift above the committed baseline before the gate fails.
const tier1MAPETolerancePts = 2.0

// runGenTables writes the regenerated Tier 2 lookup table to path.
func runGenTables(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.GenerateTable(f); err != nil {
		_ = f.Close() //lint:ignore droppederr the generate error is the signal; close failure on the abandoned file has nothing to add
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runTiers evaluates all tiers, prints the report, writes the bench
// JSON, and (with a baseline) gates Tier 1 MAPE.
func runTiers(outPath, baselinePath string, doPlot bool) error {
	tbl, err := perfmodel.DefaultTable()
	if err != nil {
		return fmt.Errorf("embedded lookup table: %v", err)
	}
	report, bench, err := experiments.Tiers(tbl)
	if err != nil {
		return err
	}
	fmt.Printf("==== %s — %s ====\n%s\n", report.ID, report.Title, report.Text)
	if doPlot {
		fmt.Println(renderPlots(report))
	}
	if !bench.OrderingOK {
		return fmt.Errorf("accuracy ordering violated: want tier2 <= tier1 <= tier0 MAPE")
	}
	if outPath != "" {
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if baselinePath != "" {
		base, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %v", err)
		}
		var baseline experiments.TierBench
		if err := json.Unmarshal(base, &baseline); err != nil {
			return fmt.Errorf("baseline %s: %v", baselinePath, err)
		}
		baseMAPE := baseline.Tiers[perfmodel.Tier1Calibrated].MAPEPct
		gotMAPE := bench.Tiers[perfmodel.Tier1Calibrated].MAPEPct
		if gotMAPE > baseMAPE+tier1MAPETolerancePts {
			return fmt.Errorf("tier1 MAPE regression: %.2f%% vs baseline %.2f%% (tolerance %.1f points)",
				gotMAPE, baseMAPE, tier1MAPETolerancePts)
		}
		fmt.Printf("tier1 MAPE %.2f%% within %.1f points of baseline %.2f%%\n",
			gotMAPE, tier1MAPETolerancePts, baseMAPE)
	}
	return nil
}

// renderPlots draws every series group of a report as an ASCII chart.
// Series labeled "<group>/<kind>" are charted together per group.
func renderPlots(r experiments.Report) string {
	groups := map[string][]plot.Series{}
	for label, pts := range r.Series {
		group := label
		if i := strings.IndexByte(label, '/'); i > 0 {
			group = label[:i]
		}
		s := plot.Series{Label: label}
		for _, p := range pts {
			s.Points = append(s.Points, plot.Point{X: p.X, Y: p.Y})
		}
		groups[group] = append(groups[group], s)
	}
	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, g := range names {
		series := groups[g]
		sort.Slice(series, func(i, j int) bool { return series[i].Label < series[j].Label })
		// Rank sweeps and size sweeps read best on a log x axis.
		b.WriteString(plot.Render(series, plot.Options{
			Title: fmt.Sprintf("%s — %s", r.ID, g),
			LogX:  true, Width: 72, Height: 18,
		}))
		b.WriteByte('\n')
	}
	return b.String()
}

var registry = []struct {
	id  string
	run func() (experiments.Report, error)
}{
	{"table1", func() (experiments.Report, error) { return experiments.Table1(), nil }},
	{"fig3", experiments.Fig3},
	{"fig4", experiments.Fig4},
	{"fig5", experiments.Fig5},
	{"table2", experiments.Table2},
	{"fig6", experiments.Fig6},
	{"table3", experiments.Table3},
	{"table4", experiments.Table4},
	{"fig7", experiments.Fig7},
	{"fig8", experiments.Fig8},
	{"fig9", experiments.Fig9},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"ext-gpu", experiments.ExtGPU},
	{"ext-shared", experiments.ExtSharedNode},
	{"ext-terms", experiments.ExtTermSelection},
	{"ext-convergence", experiments.ExtConvergence},
	{"ext-weak", experiments.ExtWeakScaling},
	{"ext-pulsatile", experiments.ExtPulsatile},
}

func main() {
	list := flag.Bool("list", false, "list artifact IDs and exit")
	doPlot := flag.Bool("plot", false, "render ASCII charts of each report's series")
	genTables := flag.Bool("gen-tables", false, "regenerate the Tier 2 lookup CSV and exit")
	genTablesOut := flag.String("gen-tables-out", "internal/perfmodel/tables/measured.csv", "output path for -gen-tables")
	tiers := flag.Bool("tiers", false, "run the per-tier MAPE evaluation")
	tiersOut := flag.String("tiers-out", "BENCH_tiers.json", "bench JSON output path for -tiers (empty to skip)")
	tiersBaseline := flag.String("tiers-baseline", "", "committed BENCH_tiers.json to gate tier1 MAPE against")
	flag.Parse()
	if *list {
		for _, e := range registry {
			fmt.Println(e.id)
		}
		return
	}
	if *genTables {
		if err := runGenTables(*genTablesOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -gen-tables: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tiers {
		if err := runTiers(*tiersOut, *tiersBaseline, *doPlot); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -tiers: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range registry {
			ids = append(ids, e.id)
		}
	}
	for _, id := range ids {
		found := false
		for _, e := range registry {
			if e.id != id {
				continue
			}
			found = true
			r, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("==== %s — %s ====\n%s\n", r.ID, r.Title, r.Text)
			if *doPlot {
				fmt.Println(renderPlots(r))
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q (use -list)\n", id)
			os.Exit(2)
		}
	}
}
