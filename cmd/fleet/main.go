// Command fleet executes a simulation campaign on the concurrent fleet
// scheduler: a JSON config declaring patient cases plus an instance pool
// (on-demand and spot capacity across mixed systems). Jobs are placed by
// priority and deadline using the performance model's per-system
// predictions; spot preemptions requeue from the last checkpointed step
// with exponential backoff; a budget governor admits, defers, or sheds
// work. The run prints the structured event log, per-instance
// utilization, and the per-job cost/deadline report. Output is
// deterministic: two runs with the same seed are byte-identical.
//
// SIGINT/SIGTERM interrupt the campaign at the next clean point (before
// the fleet simulation commits); the process exits non-zero after a
// clean shutdown.
//
// Usage:
//
//	fleet -config fleet.json
//	fleet -config fleet.json -trace trace.json -events events.jsonl
//	fleet -example            # print a starter config and exit
//
// -trace writes the run's span tree as Chrome trace-event JSON (open in
// Perfetto or chrome://tracing, or summarize with cmd/trace); -events
// exports the scheduler event log as JSONL; -metrics dumps the metrics
// snapshot as JSONL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

const exampleConfig = `{
  "seed": 42,
  "budget_usd": 6.0,
  "objective": "min-cost",
  "fleet": {
    "instances": [
      {"system": "CSP-2 Small", "count": 2, "spot": true},
      {"system": "CSP-2 Small", "count": 1},
      {"system": "CSP-2 EC", "count": 1},
      {"system": "CSP-1", "count": 1}
    ],
    "max_retries": 20,
    "backoff_base_s": 30,
    "backoff_max_s": 600,
    "preemption_per_node_hour": 300
  },
  "jobs": [
    {"name": "patient-a-aorta", "geometry": "aorta", "scale": 8, "ranks": 32,
     "steps": 5000, "priority": 3, "deadline_s": 3000},
    {"name": "patient-b-cerebral", "geometry": "cerebral", "scale": 7, "ranks": 32,
     "steps": 4000, "priority": 3, "on_demand_only": true},
    {"name": "patient-c-stenosis", "geometry": "stenosis", "scale": 6, "ranks": 16,
     "steps": 3000, "priority": 2},
    {"name": "patient-d-aorta", "geometry": "aorta", "scale": 7, "ranks": 16,
     "steps": 3500, "priority": 2},
    {"name": "patient-e-cerebral", "geometry": "cerebral", "scale": 6, "ranks": 16,
     "steps": 3000, "priority": 1},
    {"name": "batch-cyl-a", "geometry": "cylinder", "scale": 10, "ranks": 8,
     "steps": 6000, "priority": 0},
    {"name": "batch-cyl-b", "geometry": "cylinder", "scale": 10, "ranks": 8,
     "steps": 6000, "priority": 0},
    {"name": "batch-cyl-c", "geometry": "cylinder", "scale": 9, "ranks": 8,
     "steps": 5000, "priority": 0},
    {"name": "batch-cyl-d", "geometry": "cylinder", "scale": 9, "ranks": 8,
     "steps": 5000, "priority": 0},
    {"name": "batch-stenosis-a", "geometry": "stenosis", "scale": 5, "ranks": 8,
     "steps": 4000, "priority": 1},
    {"name": "batch-stenosis-b", "geometry": "stenosis", "scale": 5, "ranks": 8,
     "steps": 4000, "priority": 0}
  ]
}
`

func main() {
	path := flag.String("config", "", "fleet campaign configuration file (JSON)")
	example := flag.Bool("example", false, "print a starter configuration and exit")
	gpu := flag.Bool("gpu", false, "include the GPU instance type in the catalog")
	tracePath := flag.String("trace", "", "write the run's Chrome trace-event JSON to this file")
	eventsPath := flag.String("events", "", "export the scheduler event log as JSONL to this file")
	metricsPath := flag.String("metrics", "", "export the metrics snapshot as JSONL to this file")
	flag.Parse()

	if *example {
		fmt.Print(exampleConfig)
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "fleet: -config is required (try -example)")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	fatal(err)
	defer f.Close()
	cfg, err := campaign.Load(f)
	fatal(err)
	if cfg.Fleet == nil {
		fmt.Fprintln(os.Stderr, "fleet: config has no \"fleet\" block (try -example)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	systems := machine.Catalog()
	if *gpu {
		systems = machine.FullCatalog()
	}
	fw, err := core.NewFramework(systems, 5, cfg.Seed)
	fatal(err)

	outcome, err := campaign.Runner{Backend: campaign.BackendFleet}.Run(ctx, fw, cfg)
	if errors.Is(err, campaign.ErrInterrupted) {
		fmt.Fprintln(os.Stderr, "fleet: interrupted before the fleet run committed")
		os.Exit(1)
	}
	fatal(err)
	sum := outcome.Fleet
	fmt.Print(sum.Render())

	if *tracePath != "" {
		fatal(writeFile(*tracePath, func(f *os.File) error {
			return obs.WriteChromeTrace(f, sum.Trace.Spans())
		}))
	}
	if *eventsPath != "" {
		fatal(writeFile(*eventsPath, func(f *os.File) error {
			return obs.WriteJSONL(f, sum.Report.Events)
		}))
	}
	if *metricsPath != "" {
		fatal(writeFile(*metricsPath, func(f *os.File) error {
			return obs.WriteJSONL(f, sum.Metrics.Snapshot())
		}))
	}
}

// writeFile creates path, runs write, and surfaces the first error
// including the close (a flush failure on close still loses data).
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
}
