// Command proxyapp runs the lbm-proxy-app equivalent: dense fluid-only
// LBM kernels in a periodic cylinder, with the layout (AOS/SOA),
// propagation pattern (AB/AA) and loop structure (rolled/unrolled) the
// paper's Figures 4 and 8 sweep.
//
// Examples:
//
//	proxyapp -layout soa -pattern aa -unrolled -steps 200
//	proxyapp -all -steps 100     # benchmark every kernel variant
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/fit"
	"repro/internal/lbm"
)

func run(cfg lbm.KernelConfig, nx int, radius float64, force float64, steps, threads int) error {
	p, err := lbm.NewProxy(cfg, nx, radius, lbm.Params{Tau: 0.9, Force: [3]float64{force, 0, 0}})
	if err != nil {
		return err
	}
	p.SetThreads(threads)
	start := time.Now()
	p.Run(steps)
	elapsed := time.Since(start).Seconds()
	fmt.Printf("%-18s %9d points %6d steps %3d thr %8.3f s %10.2f MFLUPS (centerline %.4g)\n",
		cfg, p.FluidPoints(), steps, p.Threads(), elapsed,
		lbm.MFLUPS(p.FluidPoints(), steps, elapsed), p.CenterlineSpeed())
	return nil
}

// runSweep measures the unrolled SOA-AA kernel's throughput over a
// thread sweep — the proxy-app analogue of the paper's STREAM sweep —
// and fits the two-line bandwidth model to the implied traffic.
func runSweep(nx int, radius, force float64, steps int) error {
	maxThreads := runtime.GOMAXPROCS(0)
	cfg := lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true}
	access := lbm.ProxyAccess(cfg)
	var ths, bws []float64
	fmt.Printf("%8s %12s %14s\n", "threads", "MFLUPS", "implied MB/s")
	for t := 1; t <= maxThreads; t++ {
		p, err := lbm.NewProxy(cfg, nx, radius, lbm.Params{Tau: 0.9, Force: [3]float64{force, 0, 0}})
		if err != nil {
			return err
		}
		p.SetThreads(t)
		p.Run(2) // warm-up
		start := time.Now()
		p.Run(steps)
		secs := time.Since(start).Seconds()
		mflups := lbm.MFLUPS(p.FluidPoints(), steps, secs)
		implied := mflups * 1e6 * access.PointBytes(lbm.NQ) / 1e6 // MB/s
		fmt.Printf("%8d %12.2f %14.0f\n", t, mflups, implied)
		ths = append(ths, float64(t))
		bws = append(bws, implied)
	}
	if len(ths) >= 3 {
		f, err := fit.TwoLineLSQ(ths, bws)
		if err != nil {
			return err
		}
		fmt.Printf("two-line fit: a1=%.1f a2=%.1f a3=%.2f (R²=%.3f)\n", f.A1, f.A2, f.A3, f.R2)
	}
	return nil
}

func main() {
	var (
		layout   = flag.String("layout", "aos", "data layout: aos or soa")
		pattern  = flag.String("pattern", "ab", "propagation pattern: ab or aa")
		unrolled = flag.Bool("unrolled", false, "use the hand-unrolled kernel (SOA only)")
		all      = flag.Bool("all", false, "run every kernel variant")
		nx       = flag.Int("nx", 96, "cylinder length in lattice sites")
		radius   = flag.Float64("radius", 12, "cylinder radius in lattice sites")
		force    = flag.Float64("force", 1e-5, "driving body force (lattice units)")
		steps    = flag.Int("steps", 100, "timesteps to run")
		threads  = flag.Int("threads", 1, "OpenMP-style worker threads")
		sweep    = flag.Bool("sweep", false, "sweep threads 1..GOMAXPROCS and fit the Eq. 8 two-line model")
	)
	flag.Parse()

	if *sweep {
		if err := runSweep(*nx, *radius, *force, *steps); err != nil {
			fmt.Fprintln(os.Stderr, "proxyapp:", err)
			os.Exit(1)
		}
		return
	}

	if *all {
		for _, cfg := range []lbm.KernelConfig{
			{Layout: lbm.AOS, Pattern: lbm.AB},
			{Layout: lbm.AOS, Pattern: lbm.AA},
			{Layout: lbm.SOA, Pattern: lbm.AB},
			{Layout: lbm.SOA, Pattern: lbm.AA},
			{Layout: lbm.SOA, Pattern: lbm.AB, Unrolled: true},
			{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true},
		} {
			if err := run(cfg, *nx, *radius, *force, *steps, *threads); err != nil {
				fmt.Fprintln(os.Stderr, "proxyapp:", err)
				os.Exit(1)
			}
		}
		return
	}

	cfg := lbm.KernelConfig{Unrolled: *unrolled}
	switch *layout {
	case "aos":
		cfg.Layout = lbm.AOS
	case "soa":
		cfg.Layout = lbm.SOA
	default:
		fmt.Fprintf(os.Stderr, "proxyapp: unknown layout %q\n", *layout)
		os.Exit(2)
	}
	switch *pattern {
	case "ab":
		cfg.Pattern = lbm.AB
	case "aa":
		cfg.Pattern = lbm.AA
	default:
		fmt.Fprintf(os.Stderr, "proxyapp: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	if err := run(cfg, *nx, *radius, *force, *steps, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "proxyapp:", err)
		os.Exit(1)
	}
}
