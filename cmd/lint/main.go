// Command lint runs the repository's static-analysis suite
// (internal/analyzers) over one or more package patterns and fails on
// findings that are neither suppressed in-source nor grandfathered in
// the baseline file.
//
// Usage:
//
//	go run ./cmd/lint [flags] [patterns]
//
//	-checks nodeterm,floateq   run a subset of checks (default: all)
//	-baseline FILE             baseline of grandfathered findings
//	                           (default .lint-baseline.json; a missing
//	                           file means an empty baseline)
//	-write-baseline            rewrite the baseline from current
//	                           findings and exit 0
//	-json                      emit findings as a JSON array
//	-list                      list available checks and exit
//
// Patterns are directories or go-style recursive patterns such as
// ./... and ./internal/...; the default is ./... from the current
// directory. The exit status is 0 when no new findings exist, 1 when
// at least one does, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checksFlag    = fs.String("checks", "", "comma-separated check IDs to run (default: all)")
		baselineFlag  = fs.String("baseline", ".lint-baseline.json", "baseline file of grandfathered findings")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the baseline from current findings")
		jsonFlag      = fs.Bool("json", false, "emit findings as JSON")
		listFlag      = fs.Bool("list", false, "list available checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, c := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		return 0
	}

	var ids []string
	if *checksFlag != "" {
		for _, id := range strings.Split(*checksFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	checks, err := analyzers.Select(ids)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	res, err := analyzers.Run(fs.Args(), checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *writeBaseline {
		b := analyzers.NewBaseline(res.Diags)
		if err := b.Save(*baselineFlag); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "lint: wrote %d finding(s) to %s\n", len(b.Findings), *baselineFlag)
		return 0
	}

	baseline, err := analyzers.LoadBaseline(*baselineFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fresh, stale := baseline.Apply(res.Diags)

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analyzers.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d)
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "lint: stale baseline entry (no longer fires): %s [%s] %s\n",
				e.File, e.Check, e.Message)
		}
		fmt.Fprintf(stdout, "lint: %d file(s), %d finding(s) (%d baselined, %d stale baseline entries)\n",
			res.Files, len(fresh), len(res.Diags)-len(fresh), len(stale))
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}
