// Command lint runs the repository's static-analysis suite
// (internal/analyzers) over one or more package patterns and fails on
// findings that are neither suppressed in-source nor grandfathered in
// the baseline file. The suite has three layers — syntactic checks
// built on go/ast, semantic checks built on go/types, and
// interprocedural checks built on a call graph over the typed
// packages — and all three run by default.
//
// Usage:
//
//	go run ./cmd/lint [flags] [patterns]
//
//	-checks nodeterm,unitflow  run a subset of checks (default: all)
//	-baseline FILE             baseline of grandfathered findings
//	                           (default .lint-baseline.json; a missing
//	                           file means an empty baseline)
//	-write-baseline            rewrite the baseline from current
//	                           findings and exit 0
//	-format text|json|github   output format; github emits ::error
//	                           workflow annotations for inline PR review
//	-json                      shorthand for -format=json
//	-list                      list available checks and exit
//
// Patterns are directories or go-style recursive patterns such as
// ./... and ./internal/...; the default is ./... from the current
// directory. The exit status is 0 when no new findings exist, 1 when
// at least one does, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checksFlag    = fs.String("checks", "", "comma-separated check IDs to run (default: all)")
		baselineFlag  = fs.String("baseline", ".lint-baseline.json", "baseline file of grandfathered findings")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the baseline from current findings")
		formatFlag    = fs.String("format", "text", "output format: text, json or github")
		jsonFlag      = fs.Bool("json", false, "emit findings as JSON (same as -format=json)")
		listFlag      = fs.Bool("list", false, "list available checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	format := *formatFlag
	if *jsonFlag {
		format = "json"
	}
	switch format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "lint: unknown format %q (want text, json or github)\n", format)
		return 2
	}

	if *listFlag {
		for _, c := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		for _, c := range analyzers.AllTyped() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		for _, c := range analyzers.AllInter() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		return 0
	}

	var ids []string
	if *checksFlag != "" {
		for _, id := range strings.Split(*checksFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	sel, err := analyzers.SelectAll(ids)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	res, err := analyzers.RunLayers(fs.Args(), sel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	analyzers.Sort(res.Diags)

	if *writeBaseline {
		b := analyzers.NewBaseline(res.Diags)
		if err := b.Save(*baselineFlag); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "lint: wrote %d finding(s) to %s\n", len(b.Findings), *baselineFlag)
		return 0
	}

	baseline, err := analyzers.LoadBaseline(*baselineFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fresh, stale := baseline.Apply(res.Diags)

	switch format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analyzers.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case "github":
		for _, d := range fresh {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s\n",
				ghProperty(d.File), d.Line, d.Col, ghMessage(fmt.Sprintf("[%s] %s", d.Check, d.Message)))
		}
		fmt.Fprintf(stdout, "lint: %d file(s), %d finding(s) (%d baselined, %d stale baseline entries)\n",
			res.Files, len(fresh), len(res.Diags)-len(fresh), len(stale))
	default:
		for _, d := range fresh {
			fmt.Fprintln(stdout, d)
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "lint: stale baseline entry (no longer fires): %s [%s] %s\n",
				e.File, e.Check, e.Message)
		}
		fmt.Fprintf(stdout, "lint: %d file(s), %d finding(s) (%d baselined, %d stale baseline entries)\n",
			res.Files, len(fresh), len(res.Diags)-len(fresh), len(stale))
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// ghMessage escapes a workflow-annotation message per the GitHub
// Actions command syntax.
func ghMessage(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghProperty escapes a workflow-annotation property value.
func ghProperty(s string) string {
	s = ghMessage(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
