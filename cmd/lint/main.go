// Command lint runs the repository's static-analysis suite
// (internal/analyzers) over one or more package patterns and fails on
// findings that are neither suppressed in-source nor grandfathered in
// the baseline file. The suite has four layers — syntactic checks
// built on go/ast, semantic checks built on go/types, interprocedural
// checks built on a call graph over the typed packages, and
// flow-sensitive checks built on per-function control-flow graphs —
// and all four run by default.
//
// Usage:
//
//	go run ./cmd/lint [flags] [patterns]
//
//	-checks nodeterm,unitflow  run a subset of checks (default: all)
//	-baseline FILE             baseline of grandfathered findings
//	                           (default .lint-baseline.json; a missing
//	                           file means an empty baseline)
//	-write-baseline            rewrite the baseline from current
//	                           findings and exit 0
//	-prune-baseline            drop baseline entries that no longer
//	                           match any finding, rewrite, and exit 0
//	-format text|json|github   output format; github emits ::error
//	                           workflow annotations for inline PR review
//	-json                      shorthand for -format=json
//	-timing                    print per-check wall time and layer
//	                           totals after the run
//	-perfbudget                run the compiler-diagnostics perf budget
//	                           over the //lint:hot packages instead of
//	                           the lint layers
//	-write-perfbudget          regenerate the committed perf budgets
//	                           from current compiler output and exit 0
//	-perfbudget-dir DIR        budget directory (default
//	                           internal/analyzers/testdata/perfbudget)
//	-tables                    validate the committed Tier 2 lookup
//	                           tables (CSV schema, positive numerics,
//	                           sorted unique keys) instead of the lint
//	                           layers; patterns are CSV paths (default
//	                           internal/perfmodel/tables/*.csv)
//	-list                      list available checks and exit
//
// Patterns are directories or go-style recursive patterns such as
// ./... and ./internal/...; the default is ./... from the current
// directory. The exit status is 0 when no new findings exist, 1 when
// at least one does, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analyzers"
	"repro/internal/perfmodel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checksFlag    = fs.String("checks", "", "comma-separated check IDs to run (default: all)")
		baselineFlag  = fs.String("baseline", ".lint-baseline.json", "baseline file of grandfathered findings")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the baseline from current findings")
		pruneBaseline = fs.Bool("prune-baseline", false, "drop stale baseline entries and rewrite the baseline")
		formatFlag    = fs.String("format", "text", "output format: text, json or github")
		jsonFlag      = fs.Bool("json", false, "emit findings as JSON (same as -format=json)")
		timingFlag    = fs.Bool("timing", false, "print per-check wall time and layer totals")
		perfBudget    = fs.Bool("perfbudget", false, "diff compiler escape/bounds diagnostics of hot packages against committed budgets")
		writeBudget   = fs.Bool("write-perfbudget", false, "regenerate the committed perf budgets and exit")
		budgetDir     = fs.String("perfbudget-dir", "internal/analyzers/testdata/perfbudget", "perf budget directory")
		tablesFlag    = fs.Bool("tables", false, "validate the committed Tier 2 lookup tables")
		listFlag      = fs.Bool("list", false, "list available checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	format := *formatFlag
	if *jsonFlag {
		format = "json"
	}
	switch format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "lint: unknown format %q (want text, json or github)\n", format)
		return 2
	}

	if *listFlag {
		for _, c := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		for _, c := range analyzers.AllTyped() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		for _, c := range analyzers.AllInter() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.ID, c.Doc)
		}
		for _, c := range analyzers.AllFlow() {
			fmt.Fprintf(stdout, "%-13s %s\n", c.ID, c.Doc)
		}
		return 0
	}

	if *perfBudget || *writeBudget {
		return runPerfBudget(fs.Args(), *budgetDir, *writeBudget, stdout, stderr)
	}

	if *tablesFlag {
		return runTables(fs.Args(), stdout, stderr)
	}

	var ids []string
	if *checksFlag != "" {
		for _, id := range strings.Split(*checksFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	sel, err := analyzers.SelectAll(ids)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var timings *analyzers.Timings
	if *timingFlag {
		timings = analyzers.CollectTimings()
		defer analyzers.StopTimings()
	}
	res, err := analyzers.RunLayers(fs.Args(), sel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	analyzers.Sort(res.Diags)
	if timings != nil {
		printTimings(stdout, timings)
	}

	if *pruneBaseline {
		baseline, err := analyzers.LoadBaseline(*baselineFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pruned, removed := baseline.Prune(res.Diags)
		if err := pruned.Save(*baselineFlag); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "lint: pruned %d stale entr%s from %s (%d left)\n",
			removed, plural(removed, "y", "ies"), *baselineFlag, len(pruned.Findings))
		return 0
	}

	if *writeBaseline {
		b := analyzers.NewBaseline(res.Diags)
		if err := b.Save(*baselineFlag); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "lint: wrote %d finding(s) to %s\n", len(b.Findings), *baselineFlag)
		return 0
	}

	baseline, err := analyzers.LoadBaseline(*baselineFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fresh, stale := baseline.Apply(res.Diags)

	switch format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []analyzers.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case "github":
		for _, d := range fresh {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s\n",
				ghProperty(d.File), d.Line, d.Col, ghMessage(fmt.Sprintf("[%s] %s", d.Check, d.Message)))
		}
		fmt.Fprintf(stdout, "lint: %d file(s), %d finding(s) (%d baselined, %d stale baseline entries)\n",
			res.Files, len(fresh), len(res.Diags)-len(fresh), len(stale))
	default:
		for _, d := range fresh {
			fmt.Fprintln(stdout, d)
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "lint: stale baseline entry (no longer fires): %s [%s] %s\n",
				e.File, e.Check, e.Message)
		}
		fmt.Fprintf(stdout, "lint: %d file(s), %d finding(s) (%d baselined, %d stale baseline entries)\n",
			res.Files, len(fresh), len(res.Diags)-len(fresh), len(stale))
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// runTables implements -tables: run LoadTable's strict validation
// (exact header, five fields per row, positive numerics, strictly
// sorted unique (system, kernel, points, ranks) keys) over each
// committed lookup CSV. Errors carry line numbers, so a broken table
// fails CI with the offending row named.
func runTables(patterns []string, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"internal/perfmodel/tables/*.csv"}
	}
	var paths []string
	for _, p := range patterns {
		matches, err := filepath.Glob(p)
		if err != nil {
			fmt.Fprintf(stderr, "lint: tables: bad pattern %q: %v\n", p, err)
			return 2
		}
		if matches == nil && !strings.ContainsAny(p, "*?[") {
			matches = []string{p} // literal path: let the open fail loudly
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "lint: tables: no lookup tables matched")
		return 2
	}
	sort.Strings(paths)
	failed := false
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "lint: tables: %v\n", err)
			return 2
		}
		rows, groups, err := perfmodel.ValidateTableCSV(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stdout, "lint: tables: FAIL %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Fprintf(stdout, "lint: tables: %s ok (%d row(s), %d group(s))\n", path, rows, groups)
	}
	if failed {
		return 1
	}
	return 0
}

// runPerfBudget implements -perfbudget / -write-perfbudget: collect
// the compiler escape/bounds inventory of every //lint:hot package on
// the surface and either diff it against the committed budgets or
// rewrite them.
func runPerfBudget(patterns []string, dir string, write bool, stdout, stderr io.Writer) int {
	pkgs, err := analyzers.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	hot := analyzers.HotPackages(pkgs)
	if len(hot) == 0 {
		fmt.Fprintln(stdout, "lint: perfbudget: no //lint:hot packages on the surface")
		return 0
	}
	modRoot, err := analyzers.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	failed := false
	for _, pkg := range hot {
		inv, err := analyzers.CollectPerfInventory(modRoot, pkg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		path := filepath.Join(dir, analyzers.BudgetFileName(pkg.Path))
		if write {
			if err := inv.Save(path); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprintf(stdout, "lint: perfbudget: wrote %s (%d hot function(s))\n", path, len(inv.Functions))
			continue
		}
		budget, err := analyzers.LoadPerfBudget(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		failures, improvements := analyzers.DiffPerfBudget(budget, inv)
		for _, f := range failures {
			fmt.Fprintf(stdout, "lint: perfbudget: FAIL %s\n", f)
			failed = true
		}
		for _, imp := range improvements {
			fmt.Fprintf(stdout, "lint: perfbudget: note %s\n", imp)
		}
		if len(failures) == 0 {
			fmt.Fprintf(stdout, "lint: perfbudget: %s within budget (%d hot function(s))\n", pkg.Path, len(inv.Functions))
		}
	}
	if failed {
		return 1
	}
	return 0
}

// printTimings renders the per-layer and per-check wall times of one
// run, slowest first.
func printTimings(w io.Writer, t *analyzers.Timings) {
	type row struct {
		name string
		d    time.Duration
	}
	render := func(kind string, m map[string]time.Duration) {
		rows := make([]row, 0, len(m))
		for name, d := range m {
			rows = append(rows, row{name, d})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].d != rows[j].d {
				return rows[i].d > rows[j].d
			}
			return rows[i].name < rows[j].name
		})
		for _, r := range rows {
			fmt.Fprintf(w, "lint: timing %s %-13s %12s\n", kind, r.name, r.d.Round(time.Microsecond))
		}
	}
	render("layer", t.Layers())
	render("check", t.Checks())
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// ghMessage escapes a workflow-annotation message per the GitHub
// Actions command syntax.
func ghMessage(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghProperty escapes a workflow-annotation property value.
func ghProperty(s string) string {
	s = ghMessage(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
