package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// gorleakFixture is a directory with exactly two known findings.
var gorleakFixture = filepath.Join("..", "..", "internal", "analyzers", "testdata", "gorleak")

func runLint(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListFlag(t *testing.T) {
	code, out, _ := runLint("-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range []string{
		"nodeterm", "unitsuffix", "floateq", "droppederr", "lockbalance", "gorleak",
		"unitflow", "typeassert", "lossyconv",
		"ctxflow", "lockheld", "detertaint",
		"hotpath", "nilerr", "useafterfinal",
	} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	code, _, errOut := runLint("-checks", "bogus", gorleakFixture)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown check") {
		t.Errorf("stderr %q does not name the unknown check", errOut)
	}
}

func TestFindingsFailTheRun(t *testing.T) {
	code, out, _ := runLint("-checks", "gorleak", gorleakFixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "dirty.go") || !strings.Contains(out, "gorleak") {
		t.Errorf("output does not report the dirty.go findings:\n%s", out)
	}
	if !strings.Contains(out, "2 finding(s)") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint("-checks", "gorleak", "-json", gorleakFixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []analyzers.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2", len(diags))
	}
}

func TestGitHubFormat(t *testing.T) {
	code, out, _ := runLint("-checks", "gorleak", "-format", "github", gorleakFixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	// The fixture path contains no characters needing property escaping,
	// so the annotation must carry it verbatim alongside line and column.
	if !strings.Contains(out, "::error file=") || !strings.Contains(out, ",line=") {
		t.Errorf("-format=github output carries no workflow annotations:\n%s", out)
	}
	if !strings.Contains(out, "[gorleak]") {
		t.Errorf("annotation message does not name the check:\n%s", out)
	}
}

func TestGitHubEscaping(t *testing.T) {
	if got := ghMessage("50% done\nnext"); got != "50%25 done%0Anext" {
		t.Errorf("ghMessage = %q", got)
	}
	if got := ghProperty("a:b,c%d"); got != "a%3Ab%2Cc%25d" {
		t.Errorf("ghProperty = %q", got)
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	code, _, errOut := runLint("-format", "yaml", gorleakFixture)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown format") {
		t.Errorf("stderr %q does not name the unknown format", errOut)
	}
}

func TestTypedCheckSelection(t *testing.T) {
	dirty := filepath.Join("..", "..", "internal", "analyzers", "testdata", "typeassert", "dirty")
	code, out, _ := runLint("-checks", "typeassert", dirty)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "bare type assertion") {
		t.Errorf("typed findings missing from output:\n%s", out)
	}
}

func TestWriteBaselineThenClean(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	code, _, errOut := runLint("-checks", "gorleak", "-write-baseline", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("-write-baseline exit %d, want 0; stderr: %s", code, errOut)
	}
	code, out, _ := runLint("-checks", "gorleak", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("baselined run exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "0 finding(s) (2 baselined") {
		t.Errorf("summary does not account for the baselined findings:\n%s", out)
	}
}

func TestTimingFlag(t *testing.T) {
	code, out, _ := runLint("-checks", "gorleak", "-timing", gorleakFixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture has findings)", code)
	}
	if !strings.Contains(out, "lint: timing layer syntactic") {
		t.Errorf("missing syntactic layer timing line:\n%s", out)
	}
	if !strings.Contains(out, "lint: timing check gorleak") {
		t.Errorf("missing per-check timing line:\n%s", out)
	}
}

func TestTimingOffByDefault(t *testing.T) {
	_, out, _ := runLint("-checks", "gorleak", gorleakFixture)
	if strings.Contains(out, "lint: timing") {
		t.Errorf("timing lines printed without -timing:\n%s", out)
	}
}

func TestPruneBaseline(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	code, _, errOut := runLint("-checks", "gorleak", "-write-baseline", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("-write-baseline exit %d, want 0; stderr: %s", code, errOut)
	}
	b, err := analyzers.LoadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	got := len(b.Findings)
	b.Findings = append(b.Findings, analyzers.BaselineEntry{
		File: "deleted.go", Check: "gorleak", Message: "goroutine leak long since fixed",
	})
	if err := b.Save(baseline); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runLint("-checks", "gorleak", "-prune-baseline", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("-prune-baseline exit %d, want 0; output:\n%s", code, out)
	}
	want := "pruned 1 stale entry from"
	if !strings.Contains(out, want) {
		t.Errorf("output %q does not contain %q", out, want)
	}
	pruned, err := analyzers.LoadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Findings) != got {
		t.Errorf("pruned baseline has %d entries, want %d", len(pruned.Findings), got)
	}
	// The real findings must still be grandfathered.
	code, out, _ = runLint("-checks", "gorleak", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("post-prune run exit %d, want 0; output:\n%s", code, out)
	}
}
