package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// gorleakFixture is a directory with exactly two known findings.
var gorleakFixture = filepath.Join("..", "..", "internal", "analyzers", "testdata", "gorleak")

func runLint(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListFlag(t *testing.T) {
	code, out, _ := runLint("-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range []string{"nodeterm", "unitsuffix", "floateq", "droppederr", "lockbalance", "gorleak"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	code, _, errOut := runLint("-checks", "bogus", gorleakFixture)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown check") {
		t.Errorf("stderr %q does not name the unknown check", errOut)
	}
}

func TestFindingsFailTheRun(t *testing.T) {
	code, out, _ := runLint("-checks", "gorleak", gorleakFixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "dirty.go") || !strings.Contains(out, "gorleak") {
		t.Errorf("output does not report the dirty.go findings:\n%s", out)
	}
	if !strings.Contains(out, "2 finding(s)") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint("-checks", "gorleak", "-json", gorleakFixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []analyzers.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2", len(diags))
	}
}

func TestWriteBaselineThenClean(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	code, _, errOut := runLint("-checks", "gorleak", "-write-baseline", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("-write-baseline exit %d, want 0; stderr: %s", code, errOut)
	}
	code, out, _ := runLint("-checks", "gorleak", "-baseline", baseline, gorleakFixture)
	if code != 0 {
		t.Fatalf("baselined run exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "0 finding(s) (2 baselined") {
		t.Errorf("summary does not account for the baselined findings:\n%s", out)
	}
}
