// Command cluster runs the sharded planning cluster: a router/gateway
// (internal/cluster) in front of N serve.Server replicas, with
// /v1/predict and /v1/plan consistent-hash-sharded by calibration key
// so each replica's cache owns a disjoint key range.
//
// The fleet comes from one of three sources:
//
//	cluster -replicas 3              three in-process replicas (no sockets)
//	cluster -spawn 3                 three subprocess replicas (this same
//	                                 binary re-executed with -replica),
//	                                 killable independently of the router
//	cluster -join http://a,http://b  attach to already-running serve
//	                                 instances (e.g. cmd/serve processes)
//
// Router endpoints: the /v1 planning API (forwarded), GET /v1/cluster
// (topology + key shares), GET /v1/cluster/telemetry (merged fleet
// metrics + RED + SLO burn state; ?format=prom, ?refresh=1), POST
// /v1/cluster/drain?replica=NAME (&undrain=1), GET /v1/healthz,
// GET /v1/metrics.
//
// Every forwarded request carries a traceparent header, so replica
// spans nest under the router's forward spans. -trace and
// -replica-trace-dir export the span logs as JSONL at shutdown;
// cmd/trace -merge -format=tree stitches them into one tree per
// request. -debug-addr exposes net/http/pprof on a separate listener.
//
// SIGINT/SIGTERM drain the router, then (in -spawn mode) terminate the
// children.
//
// Usage:
//
//	cluster -addr :8090 -spawn 3
//	curl -s localhost:8090/v1/cluster
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	replicaMode := flag.Bool("replica", false, "run as a single replica (used by -spawn re-execution)")
	addr := flag.String("addr", ":8090", "listen address (router, or replica in -replica mode)")
	nInproc := flag.Int("replicas", 0, "in-process replica count (default 3 when no fleet source given)")
	nSpawn := flag.Int("spawn", 0, "subprocess replica count (re-executes this binary with -replica)")
	join := flag.String("join", "", "comma-separated base URLs of running serve replicas to front")
	basePort := flag.Int("replica-base-port", 18081, "first loopback port for -spawn replicas")

	vnodes := flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per replica on the ring")
	seed := flag.Int64("seed", 1, "ring/jitter/span seed")
	calibSeed := flag.Int64("calib-seed", 1, "default calibration seed (must match the replicas')")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant sustained requests/second (0 = no quotas)")
	tenantBurst := flag.Float64("tenant-burst", 16, "per-tenant token-bucket depth")
	maxInflight := flag.Int("max-inflight", 256, "concurrently forwarded planning requests before shedding 429s")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "replica health poll period (0 disables)")
	healthFails := flag.Int("health-failures", 2, "consecutive failures marking a replica dead")
	telemetryEvery := flag.Duration("telemetry-interval", 5*time.Second, "fleet telemetry scrape period (0 disables; GET /v1/cluster/telemetry?refresh=1 still works)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (off when empty; never on -addr)")
	traceFile := flag.String("trace", "", "write the span log as JSONL here at shutdown (router, or replica in -replica mode)")
	traceSeed := flag.Int64("trace-seed", 0, "span-ID seed (default -seed; -spawn replicas get -seed+1+i automatically)")
	replicaTraceDir := flag.String("replica-trace-dir", "", "directory for per-replica span JSONL exports (in-process and -spawn replicas)")

	samples := flag.Int("samples", 5, "replica microbenchmark samples (in-process and -spawn replicas)")
	cacheEntries := flag.Int("cache", 64, "replica calibration cache capacity (in-process and -spawn replicas)")
	flag.Parse()

	if *traceSeed == 0 {
		*traceSeed = *seed
	}
	if *replicaMode {
		runReplica(*addr, *samples, *cacheEntries, *calibSeed, *traceFile, *traceSeed)
		return
	}

	var (
		replicas       []cluster.Replica
		replicaTracers []*obs.Tracer // in-process replicas only; exported at shutdown
		children       []*exec.Cmd
		err            error
	)
	switch {
	case *join != "":
		replicas = joinReplicas(*join)
	case *nSpawn > 0:
		replicas, children, err = spawnReplicas(*nSpawn, *basePort, *samples, *cacheEntries, *calibSeed, *traceSeed, *replicaTraceDir)
		fatal(err)
	default:
		n := *nInproc
		if n <= 0 {
			n = 3
		}
		replicas, replicaTracers, err = inprocReplicas(n, *samples, *cacheEntries, *calibSeed, *traceSeed)
		fatal(err)
	}

	// The router's span seed must differ from every replica's: span IDs
	// derive from seed+sequence, and a merged trace needs them distinct.
	routerTracer := obs.NewTracer(*traceSeed)
	c, err := cluster.New(cluster.Config{
		Replicas:          replicas,
		VirtualNodes:      *vnodes,
		Seed:              *seed,
		DefaultSeed:       *calibSeed,
		TenantRate:        *tenantRPS,
		TenantBurst:       *tenantBurst,
		MaxInflight:       *maxInflight,
		HealthInterval:    *healthEvery,
		HealthFailures:    *healthFails,
		TelemetryInterval: *telemetryEvery,
		Tracer:            routerTracer,
	})
	fatal(err)
	startDebugServer(*debugAddr)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           c.Router().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("cluster: router on %s fronting %d replicas (vnodes %d, seed %d)\n",
		*addr, len(replicas), *vnodes, *seed)
	for _, r := range c.Replicas() {
		fmt.Printf("cluster:   %-8s %-10s %s\n", r.Name, r.State, r.BaseURL)
	}

	select {
	case err := <-errc:
		reapChildren(children)
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cluster: signal received; draining")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cluster: http shutdown:", err)
	}
	if err := c.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
	}
	reapChildren(children)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cluster:", err)
	}
	writeTrace(*traceFile, routerTracer)
	for i, tr := range replicaTracers {
		if *replicaTraceDir != "" {
			writeTrace(replicaTracePath(*replicaTraceDir, i), tr)
		}
	}
	// Like cmd/serve: a clean signal-driven shutdown still exits
	// non-zero — the service was asked to die mid-job.
	fmt.Fprintln(os.Stderr, "cluster: shutdown complete")
	os.Exit(1)
}

// runReplica is the -replica role: one serve.Server on addr, the unit
// -spawn mode multiplies. traceFile, when set, receives the replica's
// span log as JSONL at shutdown so cmd/trace -merge can stitch it back
// under the router's forward spans.
func runReplica(addr string, samples, cacheEntries int, calibSeed int64, traceFile string, traceSeed int64) {
	tracer := obs.NewTracer(traceSeed)
	srv, err := serve.New(serve.Config{
		Samples:      samples,
		DefaultSeed:  calibSeed,
		CacheEntries: cacheEntries,
		Tracer:       tracer,
	})
	fatal(err)
	hs := &http.Server{Addr: addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("cluster-replica: listening on %s\n", addr)
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-replica: http shutdown:", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-replica:", err)
	}
	writeTrace(traceFile, tracer)
	os.Exit(1)
}

// inprocReplicas builds n serve.Servers wired through in-process
// transports — zero sockets, the fastest single-host topology. Each
// replica's tracer is seeded baseTraceSeed+1+i: distinct from the
// router's and from each other's, so one merged trace never collides
// span IDs.
func inprocReplicas(n, samples, cacheEntries int, calibSeed, baseTraceSeed int64) ([]cluster.Replica, []*obs.Tracer, error) {
	replicas := make([]cluster.Replica, n)
	tracers := make([]*obs.Tracer, n)
	for i := range replicas {
		tracers[i] = obs.NewTracer(baseTraceSeed + 1 + int64(i))
		srv, err := serve.New(serve.Config{
			Samples:      samples,
			DefaultSeed:  calibSeed,
			CacheEntries: cacheEntries,
			Tracer:       tracers[i],
		})
		if err != nil {
			return nil, nil, err
		}
		name := fmt.Sprintf("r%d", i)
		replicas[i] = cluster.Replica{
			Name:      name,
			BaseURL:   "http://" + name,
			Transport: cluster.NewHandlerTransport(srv.Handler()),
		}
	}
	return replicas, tracers, nil
}

// spawnReplicas re-executes this binary n times with -replica on
// consecutive loopback ports and waits for each /v1/healthz. With a
// traceDir, each child exports its span log there under a distinct
// span seed (baseTraceSeed+1+i).
func spawnReplicas(n, basePort, samples, cacheEntries int, calibSeed, baseTraceSeed int64, traceDir string) ([]cluster.Replica, []*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	replicas := make([]cluster.Replica, n)
	children := make([]*exec.Cmd, n)
	for i := range replicas {
		port := basePort + i
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		args := []string{"-replica",
			"-addr", addr,
			"-samples", fmt.Sprint(samples),
			"-cache", fmt.Sprint(cacheEntries),
			"-calib-seed", fmt.Sprint(calibSeed),
			"-trace-seed", fmt.Sprint(baseTraceSeed + 1 + int64(i))}
		if traceDir != "" {
			args = append(args, "-trace", replicaTracePath(traceDir, i))
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			reapChildren(children[:i])
			return nil, nil, fmt.Errorf("spawning replica %d: %w", i, err)
		}
		children[i] = cmd
		replicas[i] = cluster.Replica{
			Name:      fmt.Sprintf("r%d", i),
			BaseURL:   "http://" + addr,
			Transport: newFleetTransport(),
		}
	}
	for _, r := range replicas {
		if err := waitHealthy(r.BaseURL, 15*time.Second); err != nil {
			reapChildren(children)
			return nil, nil, err
		}
	}
	return replicas, children, nil
}

// joinReplicas fronts already-running serve processes at the given
// comma-separated base URLs.
func joinReplicas(csv string) []cluster.Replica {
	var replicas []cluster.Replica
	for i, u := range strings.Split(csv, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		replicas = append(replicas, cluster.Replica{
			Name:      fmt.Sprintf("r%d", i),
			BaseURL:   u,
			Transport: newFleetTransport(),
		})
	}
	return replicas
}

// newFleetTransport is one keepalive pool per replica, so a slow or
// dead replica cannot starve the others' connections.
func newFleetTransport() *http.Transport {
	return &http.Transport{MaxIdleConnsPerHost: 64, IdleConnTimeout: 30 * time.Second}
}

// waitHealthy polls a replica's /v1/healthz until it answers 200.
func waitHealthy(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			werr := resp.Body.Close()
			if werr == nil && resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// reapChildren terminates -spawn replicas: TERM, then a bounded wait.
func reapChildren(children []*exec.Cmd) {
	for _, cmd := range children {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			continue // already gone
		}
	}
	for _, cmd := range children {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			_ = c.Wait() //lint:ignore droppederr replica exit status is advisory during shutdown
			close(done)
		}(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			if err := cmd.Process.Kill(); err == nil {
				<-done
			}
		}
	}
}

// replicaTracePath is the per-replica span export path shared by the
// in-process writer, the -spawn child flags, and the documentation.
func replicaTracePath(dir string, i int) string {
	return fmt.Sprintf("%s/r%d.jsonl", dir, i)
}

// startDebugServer exposes the pprof mux on its own listener; the
// router mux never carries the debug endpoints.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	hs := &http.Server{Addr: addr, Handler: serve.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
	//lint:ignore gorleak the debug listener deliberately lives until process exit; profiling must stay reachable through shutdown
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cluster: debug listener:", err)
		}
	}()
	fmt.Printf("cluster: pprof on %s (debug only; not on the router mux)\n", addr)
}

// writeTrace exports a tracer's span log as JSONL for cmd/trace.
func writeTrace(path string, tracer *obs.Tracer) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster: trace export:", err)
		return
	}
	err = obs.WriteJSONL(f, tracer.Spans())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster: trace export:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cluster: trace written to %s\n", path)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}
