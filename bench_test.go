// Package repro's benchmark harness regenerates every table and figure of
// the paper (one testing.B benchmark per artifact, BenchmarkTableN /
// BenchmarkFigN) and additionally benchmarks the real host kernels the
// library ships: the LBM engines, the microbenchmarks themselves, the
// decomposition and the goroutine-parallel runner. Ablation benchmarks at
// the end quantify the design choices DESIGN.md calls out.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/mbench"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/simcloud"
)

// benchReport runs one experiment artifact per iteration, failing the
// bench if regeneration errors.
func benchReport(b *testing.B, f func() (experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); len(r.Series) != 5 {
			b.Fatal("catalog incomplete")
		}
	}
}

func BenchmarkFig3StrongScaling(b *testing.B) { benchReport(b, experiments.Fig3) }
func BenchmarkFig4ProxyScaling(b *testing.B)  { benchReport(b, experiments.Fig4) }
func BenchmarkFig5Stream(b *testing.B)        { benchReport(b, experiments.Fig5) }
func BenchmarkTable2Bandwidth(b *testing.B)   { benchReport(b, experiments.Table2) }
func BenchmarkFig6PingPong(b *testing.B)      { benchReport(b, experiments.Fig6) }
func BenchmarkTable3FitParams(b *testing.B)   { benchReport(b, experiments.Table3) }
func BenchmarkTable4Noise(b *testing.B)       { benchReport(b, experiments.Table4) }
func BenchmarkFig7ModelHarvey(b *testing.B)   { benchReport(b, experiments.Fig7) }
func BenchmarkFig8ModelProxy(b *testing.B)    { benchReport(b, experiments.Fig8) }
func BenchmarkFig9Composition(b *testing.B)   { benchReport(b, experiments.Fig9) }
func BenchmarkFig10Composition(b *testing.B)  { benchReport(b, experiments.Fig10) }
func BenchmarkFig11Heatmap(b *testing.B)      { benchReport(b, experiments.Fig11) }
func BenchmarkExtGPU(b *testing.B)            { benchReport(b, experiments.ExtGPU) }
func BenchmarkExtSharedNode(b *testing.B)     { benchReport(b, experiments.ExtSharedNode) }
func BenchmarkExtTermSelection(b *testing.B)  { benchReport(b, experiments.ExtTermSelection) }
func BenchmarkExtConvergence(b *testing.B)    { benchReport(b, experiments.ExtConvergence) }
func BenchmarkExtWeakScaling(b *testing.B)    { benchReport(b, experiments.ExtWeakScaling) }
func BenchmarkExtPulsatile(b *testing.B)      { benchReport(b, experiments.ExtPulsatile) }

// --- Host kernel benchmarks -------------------------------------------

// benchProxyKernel measures a proxy-app kernel variant on the host and
// reports MFLUPS alongside ns/op.
func benchProxyKernel(b *testing.B, cfg lbm.KernelConfig) {
	b.Helper()
	p, err := lbm.NewProxy(cfg, 64, 10, lbm.Params{Tau: 0.9, Force: [3]float64{1e-5, 0, 0}})
	if err != nil {
		b.Fatal(err)
	}
	p.Run(2) // warm both AA phases
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
	b.StopTimer()
	updates := float64(p.FluidPoints()) * float64(b.N)
	b.ReportMetric(updates/b.Elapsed().Seconds()/1e6, "MFLUPS")
}

func BenchmarkProxyAOSAB(b *testing.B) {
	benchProxyKernel(b, lbm.KernelConfig{Layout: lbm.AOS, Pattern: lbm.AB})
}
func BenchmarkProxyAOSAA(b *testing.B) {
	benchProxyKernel(b, lbm.KernelConfig{Layout: lbm.AOS, Pattern: lbm.AA})
}
func BenchmarkProxySOAAB(b *testing.B) {
	benchProxyKernel(b, lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AB})
}
func BenchmarkProxySOAAA(b *testing.B) {
	benchProxyKernel(b, lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AA})
}
func BenchmarkProxySOAABUnrolled(b *testing.B) {
	benchProxyKernel(b, lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AB, Unrolled: true})
}
func BenchmarkProxySOAAAUnrolled(b *testing.B) {
	benchProxyKernel(b, lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true})
}

func BenchmarkHarveySerialStep(b *testing.B) {
	dom, err := geometry.Aorta(8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(s.N())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLUPS")
}

func BenchmarkParallelRunner8Ranks(b *testing.B) {
	dom, err := geometry.Cylinder(64, 10)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := decomp.RCB(s, 8, lbm.HarveyAccess())
	if err != nil {
		b.Fatal(err)
	}
	r, err := par.NewRunner(s, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(1)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.N())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLUPS")
}

func BenchmarkRCBDecomposition128(b *testing.B) {
	dom, err := geometry.Cylinder(96, 12)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		b.Fatal(err)
	}
	m := lbm.HarveyAccess()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decomp.RCB(s, 128, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamHostCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mbench.StreamHost(mbench.Copy, 2, 1<<22, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingPongHost4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mbench.PingPongHost(4096, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedRun144Ranks(b *testing.B) {
	dom, err := geometry.Cylinder(96, 12)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := decomp.RCB(s, 144, lbm.HarveyAccess())
	if err != nil {
		b.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	sys := machine.NewCSP2()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simcloud.Run(w, sys, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSchedule runs a full fleet-scheduled campaign per
// iteration: a mixed on-demand/spot pool with a live preemption hazard,
// eight jobs with mixed priorities, workers on real goroutines. The
// extra metric reports scheduler events per run.
func BenchmarkFleetSchedule(b *testing.B) {
	dom, err := geometry.Cylinder(24, 6)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := decomp.RCB(s, 8, lbm.HarveyAccess())
	if err != nil {
		b.Fatal(err)
	}
	w := simcloud.FromPartition("bench-cyl", s.N(), p)
	cfg := fleet.Config{
		Seed:                  7,
		BudgetUSD:             1,
		MaxRetries:            20,
		PreemptionPerNodeHour: 2e5,
		Instances: []fleet.InstanceConfig{
			{System: "CSP-2 Small", Count: 2, Spot: true},
			{System: "CSP-2 EC", Count: 1},
			{System: "CSP-1", Count: 1},
		},
	}
	jobs := make([]*fleet.Job, 8)
	for i := range jobs {
		jobs[i] = &fleet.Job{
			Name:     "bench-" + string(rune('a'+i)),
			Workload: w,
			Steps:    200 + 50*i,
			Priority: i % 3,
		}
	}
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := fleet.NewScheduler(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sched.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		if r.Completed != len(jobs) {
			b.Fatalf("completed %d/%d", r.Completed, len(jobs))
		}
		events = len(r.Events)
	}
	b.ReportMetric(float64(events), "events/run")
}

// --- Ablation benchmarks ----------------------------------------------

// BenchmarkAblationZModel quantifies the load-imbalance law's effect: the
// generalized prediction with the fitted z(n) versus z pinned to 1
// (perfect balance). The reported metric is the percentage by which
// ignoring imbalance inflates the predicted MFLUPS at 128 ranks.
func BenchmarkAblationZModel(b *testing.B) {
	dom, err := geometry.Aorta(8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	access := lbm.HarveyAccess()
	sys := machine.NewCSP2()
	c, err := perfmodel.Characterize(sys, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := perfmodel.CalibrateGeneral(s, access, []int{1, 2, 4, 8, 16, 32, 64, 128}, sys.CoresPerNode)
	if err != nil {
		b.Fatal(err)
	}
	noZ := g
	noZ.Z.C1 = 0 // z(n) == 1 for all n
	ws := perfmodel.WorkloadSummary{Name: "aorta", Points: s.N(), BytesSerial: s.BytesSerial(access)}
	var inflation float64
	for i := 0; i < b.N; i++ {
		with, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: 128})
		if err != nil {
			b.Fatal(err)
		}
		without, err := c.Predict(perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: noZ, Ranks: 128})
		if err != nil {
			b.Fatal(err)
		}
		inflation = (without.MFLUPS/with.MFLUPS - 1) * 100
	}
	b.ReportMetric(inflation, "%inflation")
}

// BenchmarkAblationAAvsABTraffic reports the per-point effective-byte
// ratio between the AB and AA patterns (unrolled SOA) — the traffic saving
// behind Figure 4's upward shift.
func BenchmarkAblationAAvsABTraffic(b *testing.B) {
	ab := lbm.ProxyAccess(lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AB, Unrolled: true})
	aa := lbm.ProxyAccess(lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true})
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = ab.PointBytes(19) / aa.PointBytes(19)
	}
	b.ReportMetric(ratio, "AB/AA-bytes")
}

// BenchmarkAblationUnrolling measures the real host speedup of the
// unrolled SOA-AB kernel over the rolled one.
func BenchmarkAblationUnrolling(b *testing.B) {
	run := func(cfg lbm.KernelConfig) float64 {
		p, err := lbm.NewProxy(cfg, 48, 8, lbm.Params{Tau: 0.9, Force: [3]float64{1e-5, 0, 0}})
		if err != nil {
			b.Fatal(err)
		}
		const steps = 10
		p.Run(2)
		start := time.Now()
		p.Run(steps)
		return float64(p.FluidPoints()) * steps / time.Since(start).Seconds()
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rolled := run(lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AB})
		unrolled := run(lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AB, Unrolled: true})
		speedup = unrolled / rolled
	}
	b.ReportMetric(speedup, "unroll-speedup")
}

// BenchmarkAblationPrecision reports the Eq. 9 effective-byte ratio of
// double over single precision (d_size 8 vs 4) for the HARVEY kernel —
// the traffic a precision downgrade saves, which is how the paper's
// d_size parameter enters resource planning.
func BenchmarkAblationPrecision(b *testing.B) {
	double := lbm.HarveyAccess()
	single := double
	single.DataSize = 4
	quad := double
	quad.DataSize = 16
	var ratioSingle, ratioQuad float64
	for i := 0; i < b.N; i++ {
		ratioSingle = double.PointBytes(19) / single.PointBytes(19)
		ratioQuad = quad.PointBytes(19) / double.PointBytes(19)
	}
	b.ReportMetric(ratioSingle, "fp64/fp32-bytes")
	b.ReportMetric(ratioQuad, "fp128/fp64-bytes")
}

// BenchmarkAblationGridVsRCB reports the load-imbalance penalty of the
// naive uniform-grid decomposition over RCB on the anatomical aorta.
func BenchmarkAblationGridVsRCB(b *testing.B) {
	dom, err := geometry.Aorta(8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	m := lbm.HarveyAccess()
	var penalty float64
	for i := 0; i < b.N; i++ {
		rcb, err := decomp.RCB(s, 27, m)
		if err != nil {
			b.Fatal(err)
		}
		grid, err := decomp.GridCube(s, 27, m)
		if err != nil {
			b.Fatal(err)
		}
		penalty = grid.Imbalance() / rcb.Imbalance()
	}
	b.ReportMetric(penalty, "grid/RCB-imbalance")
}

// BenchmarkAblationInterconnect reports the simulated MFLUPS ratio of
// CSP-2 EC over CSP-2 at full scale — what the Enhanced Communicator buys.
func BenchmarkAblationInterconnect(b *testing.B) {
	dom, err := geometry.Cylinder(96, 12)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		b.Fatal(err)
	}
	p, err := decomp.RCB(s, 144, lbm.HarveyAccess())
	if err != nil {
		b.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	var gain float64
	for i := 0; i < b.N; i++ {
		ec, err := simcloud.Run(w, machine.NewCSP2EC(), 20, nil)
		if err != nil {
			b.Fatal(err)
		}
		noEC, err := simcloud.Run(w, machine.NewCSP2(), 20, nil)
		if err != nil {
			b.Fatal(err)
		}
		gain = ec.MFLUPS / noEC.MFLUPS
	}
	b.ReportMetric(gain, "EC-speedup")
}
